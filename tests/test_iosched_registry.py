"""Strategy registry (repro.iosched.registry)."""

from __future__ import annotations

import pytest

from repro.apps.checkpoint_policy import DalyPolicy, FixedPolicy
from repro.errors import ConfigurationError
from repro.iosched.least_waste import LeastWasteScheduler
from repro.iosched.oblivious import ObliviousScheduler
from repro.iosched.ordered import OrderedScheduler
from repro.iosched.ordered_nb import OrderedNBScheduler
from repro.iosched.registry import STRATEGIES, make_strategy, strategy_names
from repro.platform.io_subsystem import IOSubsystem
from repro.sim.engine import SimulationEngine


def test_the_seven_paper_strategies_are_registered():
    assert len(STRATEGIES) == 7
    assert strategy_names() == STRATEGIES
    assert "least-waste" in STRATEGIES
    assert "oblivious-fixed" in STRATEGIES
    assert "orderednb-daly" in STRATEGIES


@pytest.mark.parametrize(
    ("name", "scheduler_cls", "policy_cls"),
    [
        ("oblivious-fixed", ObliviousScheduler, FixedPolicy),
        ("oblivious-daly", ObliviousScheduler, DalyPolicy),
        ("ordered-fixed", OrderedScheduler, FixedPolicy),
        ("ordered-daly", OrderedScheduler, DalyPolicy),
        ("orderednb-fixed", OrderedNBScheduler, FixedPolicy),
        ("orderednb-daly", OrderedNBScheduler, DalyPolicy),
        ("least-waste", LeastWasteScheduler, DalyPolicy),
    ],
)
def test_strategy_composition(name, scheduler_cls, policy_cls):
    strategy = make_strategy(name)
    assert strategy.name == name
    assert strategy.scheduler_cls is scheduler_cls
    assert isinstance(strategy.policy, policy_cls)
    assert strategy.nonblocking_checkpoints == scheduler_cls.nonblocking_checkpoints
    assert strategy.shares_bandwidth == scheduler_cls.shares_bandwidth
    assert strategy.label  # human-readable label exists


def test_make_strategy_is_case_insensitive_and_validates():
    assert make_strategy("Least-Waste").name == "least-waste"
    with pytest.raises(ConfigurationError):
        make_strategy("round-robin")


def test_make_strategy_error_lists_every_valid_name():
    with pytest.raises(ConfigurationError) as excinfo:
        make_strategy("round-robin")
    message = str(excinfo.value)
    assert "round-robin" in message
    for name in STRATEGIES:
        assert name in message


def test_make_strategy_suggests_close_matches():
    with pytest.raises(ConfigurationError) as excinfo:
        make_strategy("least-wast")  # typo
    assert "did you mean 'least-waste'?" in str(excinfo.value)
    with pytest.raises(ConfigurationError) as excinfo:
        make_strategy("ordered-dally")
    assert "did you mean 'ordered-daly'?" in str(excinfo.value)


@pytest.mark.parametrize("bad", [None, 3, ["least-waste"], b"least-waste"])
def test_make_strategy_rejects_non_string_names_with_config_error(bad):
    """Non-string input used to escape as AttributeError; it must surface as
    the library's ConfigurationError with the valid names listed."""
    with pytest.raises(ConfigurationError) as excinfo:
        make_strategy(bad)
    assert "least-waste" in str(excinfo.value)


def test_fixed_period_override_propagates():
    strategy = make_strategy("ordered-fixed", fixed_period_s=1800.0)
    assert isinstance(strategy.policy, FixedPolicy)
    assert strategy.policy.period_s == 1800.0


def test_make_scheduler_instantiates_against_engine_and_io():
    engine = SimulationEngine()
    io = IOSubsystem(engine, bandwidth_bytes_per_s=1e9)
    for name in STRATEGIES:
        scheduler = make_strategy(name).make_scheduler(engine, io, node_mtbf_s=1e6)
        assert scheduler.engine is engine
        assert scheduler.io is io
        assert scheduler.pending_requests() == ()
        assert scheduler.active_requests() == ()


# ------------------------------------------------------- parameterized specs
def test_spec_period_beats_the_fixed_period_argument():
    """An explicit period_s in the spec wins over the run-level fallback."""
    strategy = make_strategy("ordered[policy=fixed,period_s=900]", fixed_period_s=1800.0)
    assert isinstance(strategy.policy, FixedPolicy)
    assert strategy.policy.period_s == 900.0
    assert strategy.name == "ordered[policy=fixed,period_s=900]"


def test_spec_without_period_inherits_the_fixed_period_argument():
    strategy = make_strategy("ordered[policy=fixed]", fixed_period_s=1800.0)
    assert strategy.name == "ordered-fixed"  # canonical collapse
    assert strategy.policy.period_s == 1800.0


def test_least_waste_mtbf_bias_scales_the_scheduler_mtbf():
    engine = SimulationEngine()
    io = IOSubsystem(engine, bandwidth_bytes_per_s=1e9)
    plain = make_strategy("least-waste").make_scheduler(engine, io, node_mtbf_s=1e6)
    biased = make_strategy("least-waste[mtbf_bias=2]").make_scheduler(
        engine, io, node_mtbf_s=1e6
    )
    assert plain.node_mtbf_s == 1e6
    assert biased.node_mtbf_s == 2e6


def test_make_strategy_accepts_strategy_spec_objects():
    from repro.iosched.spec import StrategySpec

    strategy = make_strategy(StrategySpec("orderednb", {"policy": "fixed"}))
    assert strategy.name == "orderednb-fixed"
    assert isinstance(strategy.policy, FixedPolicy)

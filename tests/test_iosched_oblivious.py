"""Oblivious (uncoordinated, interfering) I/O scheduling."""

from __future__ import annotations

import pytest

from repro.apps.job import Job
from repro.apps.phases import IOKind
from repro.iosched.base import IORequest
from repro.iosched.oblivious import ObliviousScheduler
from repro.platform.io_subsystem import IOSubsystem
from repro.sim.engine import SimulationEngine
from repro.units import HOUR


@pytest.fixture
def engine() -> SimulationEngine:
    return SimulationEngine()


@pytest.fixture
def io(engine) -> IOSubsystem:
    return IOSubsystem(engine, bandwidth_bytes_per_s=100.0)


@pytest.fixture
def scheduler(engine, io) -> ObliviousScheduler:
    return ObliviousScheduler(engine, io, node_mtbf_s=1e6)


def make_job(tiny_classes, index=0):
    return Job(app_class=tiny_classes[index], total_work_s=HOUR)


def test_flags():
    assert ObliviousScheduler.shares_bandwidth
    assert not ObliviousScheduler.nonblocking_checkpoints
    assert ObliviousScheduler.name == "oblivious"


def test_requests_start_immediately_and_interfere(engine, io, scheduler, tiny_classes):
    job_a = make_job(tiny_classes, 0)  # 4 nodes
    job_b = make_job(tiny_classes, 0)  # 4 nodes -> equal shares
    finish: dict[str, float] = {}
    a = IORequest(job_a, IOKind.CHECKPOINT, 500.0, 0.0, on_complete=lambda r: finish.setdefault("a", engine.now))
    b = IORequest(job_b, IOKind.CHECKPOINT, 500.0, 0.0, on_complete=lambda r: finish.setdefault("b", engine.now))
    scheduler.submit(a)
    scheduler.submit(b)
    # Nothing waits under oblivious scheduling.
    assert scheduler.pending_requests() == ()
    assert len(scheduler.active_requests()) == 2
    assert a.granted_at == 0.0 and b.granted_at == 0.0
    engine.run()
    # Two equal-weight transfers of 500 B at 100 B/s aggregate: both dilated
    # to 10 s instead of 5 s alone — the CR-CR interference of §1.
    assert finish["a"] == pytest.approx(10.0)
    assert finish["b"] == pytest.approx(10.0)


def test_interference_is_weighted_by_node_count(engine, io, scheduler, tiny_classes):
    big = make_job(tiny_classes, 0)  # 4 nodes
    small = make_job(tiny_classes, 1)  # 2 nodes
    finish: dict[str, float] = {}
    scheduler.submit(IORequest(big, IOKind.INPUT, 400.0, 0.0, on_complete=lambda r: finish.setdefault("big", engine.now)))
    scheduler.submit(IORequest(small, IOKind.INPUT, 400.0, 0.0, on_complete=lambda r: finish.setdefault("small", engine.now)))
    engine.run()
    # big gets 2/3 of the bandwidth while both are running.
    assert finish["big"] == pytest.approx(6.0)
    assert finish["small"] < finish["big"] + 6.0  # small finishes later overall
    assert finish["small"] == pytest.approx(8.0)


def test_cancel_job_aborts_only_that_jobs_transfers(engine, io, scheduler, tiny_classes):
    victim = make_job(tiny_classes, 0)
    survivor = make_job(tiny_classes, 0)
    finish: dict[str, float] = {}
    scheduler.submit(IORequest(victim, IOKind.INPUT, 1000.0, 0.0, on_complete=lambda r: finish.setdefault("victim", engine.now)))
    scheduler.submit(IORequest(survivor, IOKind.INPUT, 1000.0, 0.0, on_complete=lambda r: finish.setdefault("survivor", engine.now)))
    engine.schedule(5.0, lambda: scheduler.cancel_job(victim))
    engine.run()
    assert "victim" not in finish
    assert finish["survivor"] == pytest.approx(12.5)
    assert scheduler.active_requests() == ()


def test_completed_requests_leave_the_active_set(engine, io, scheduler, tiny_classes):
    job = make_job(tiny_classes)
    scheduler.submit(IORequest(job, IOKind.OUTPUT, 100.0, 0.0))
    engine.run()
    assert scheduler.active_requests() == ()

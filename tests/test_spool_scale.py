"""Scale properties of the sharded spool and the journaled cache index.

Two kinds of guarantee live here:

* **Property tests** (Hypothesis): shard assignment is a pure function —
  identical in every process, regardless of hash randomization — and the
  incrementally-maintained journal index always folds to exactly the state
  a from-scratch directory rebuild produces, whatever the operation
  history.
* **Complexity bounds**: on a synthetic 10k-entry spool/cache, the hot
  paths a fleet hammers (submitter journal polling, the drained check,
  ``cache stats``) cost O(shards touched) filesystem operations — counted
  at the ``os.scandir``/``os.stat`` level — not O(entries).
"""

from __future__ import annotations

import contextlib
import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

from hypothesis import given, settings, strategies as st

from repro.distributed import TaskSpec, WorkSpool
from repro.distributed.tasks import SHARD_WIDTH, shard_of
from repro.exec import ResultCache

_HEX = "0123456789abcdef"


# ---------------------------------------------------- shard assignment purity
@settings(max_examples=200, deadline=None)
@given(task_id=st.text(min_size=0, max_size=40))
def test_shard_of_is_total_stable_and_well_formed(task_id):
    shard = shard_of(task_id)
    assert len(shard) == SHARD_WIDTH
    assert all(char in _HEX for char in shard)
    assert shard == shard_of(task_id)  # pure: no per-call state
    head = task_id[:SHARD_WIDTH].lower()
    if len(head) == SHARD_WIDTH and all(char in _HEX for char in head):
        assert shard == head  # hex heads shard by digest prefix, verbatim


@settings(max_examples=100, deadline=None)
@given(task_id=st.text(alphabet=_HEX, min_size=SHARD_WIDTH, max_size=24))
def test_shard_of_hex_ids_is_case_insensitive(task_id):
    assert shard_of(task_id) == shard_of(task_id.upper())


def test_shard_of_is_identical_across_processes(tmp_path):
    """Every submitter/worker/sweeper process must derive the same shard for
    a task id.  Run the mapping in subprocesses with *different* hash
    randomization — a ``hash()``-based implementation would diverge."""
    ids = [
        "00f3a1b2-least-waste-0123456789abcdef",
        "ff00aa11-young-daly-fedcba9876543210",
        "not-hex-task-id",
        "",
        "zz",
        "AbCd1234-mixed-case",
    ]
    local = {task_id: shard_of(task_id) for task_id in ids}
    script = (
        "import json, sys\n"
        "from repro.distributed.tasks import shard_of\n"
        "ids = json.load(sys.stdin)\n"
        "print(json.dumps({i: shard_of(i) for i in ids}))\n"
    )
    for hashseed in ("0", "4242"):
        env = dict(os.environ, PYTHONHASHSEED=hashseed)
        env["PYTHONPATH"] = os.pathsep.join(
            filter(None, [str(Path(__file__).parent.parent / "src"), env.get("PYTHONPATH")])
        )
        result = subprocess.run(
            [sys.executable, "-c", script],
            input=json.dumps(ids),
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        assert json.loads(result.stdout) == local


# ------------------------------------------- journal index == rebuilt index
def _prop_spec(index: int) -> TaskSpec:
    digit = _HEX[index % len(_HEX)]
    return TaskSpec(
        task=None, digest=digit * 64, strategy="least-waste", seeds=(index,)
    )


def _apply(spool: WorkSpool, spec: TaskSpec, action: str) -> None:
    """Drive one task through a real done/failed/requeue transition."""
    spool.enqueue(spec)  # requeues (journal event) if a stale marker exists
    if action == "requeue":
        return
    held = []
    while (batch := spool.claim_batch("prop-worker", limit=100)) is not None:
        held.extend(batch.specs)
    assert any(s.task_id == spec.task_id for s in held)
    for claimed in held:
        if claimed.task_id != spec.task_id:
            spool.release(claimed.task_id)
        elif action == "done":
            spool.ack(claimed.task_id)
        else:
            spool.fail(claimed.task_id, error="injected by the property suite")


@settings(max_examples=25, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["done", "failed", "requeue"]), st.integers(0, 5)
        ),
        max_size=12,
    )
)
def test_journal_index_always_matches_directory_rebuild(ops):
    """After ANY operation history, folding the append-only journal gives
    exactly the state a from-scratch directory scan reconstructs."""
    with tempfile.TemporaryDirectory() as root:
        spool = WorkSpool(root)
        specs = [_prop_spec(index) for index in range(6)]
        for action, index in ops:
            _apply(spool, specs[index], action)
        for shard in sorted({shard_of(spec.task_id) for spec in specs}):
            assert spool.index_snapshot(shard) == spool.rebuild_index(shard)


# --------------------------------------------------- O(shards touched) bounds
@contextlib.contextmanager
def _counting_fs():
    """Count every os.scandir/os.stat while the block runs (pathlib's
    ``is_dir``/``exists``/``glob`` resolve these at call time, so the walk
    cost of EVERY layer — spool, cache, journal — is visible here)."""
    counts = {"scandir": 0, "stat": 0}
    real_scandir, real_stat = os.scandir, os.stat

    def counting_scandir(*args, **kwargs):
        counts["scandir"] += 1
        return real_scandir(*args, **kwargs)

    def counting_stat(*args, **kwargs):
        counts["stat"] += 1
        return real_stat(*args, **kwargs)

    os.scandir, os.stat = counting_scandir, counting_stat
    try:
        yield counts
    finally:
        os.scandir, os.stat = real_scandir, real_stat


def _synthetic_spool(root: Path, *, done: int, done_shards: int) -> WorkSpool:
    """A spool with a long completion history: ``done`` finished tasks
    spread over ``done_shards`` shards, written directly (synthetically)."""
    spool = WorkSpool(root)
    for index in range(done):
        shard = f"{index % done_shards:02x}"
        task_id = f"{shard}{index:06x}-least-waste-{index:016x}"
        shard_dir = root / "done" / shard
        shard_dir.mkdir(parents=True, exist_ok=True)
        (shard_dir / f"{task_id}.json").write_text("{}")
    return spool


def test_idle_check_ignores_the_done_history(tmp_path):
    """The submitter/worker drained check must stay O(shards) however many
    tasks have ever finished: 10k done entries, bounded scandir+stat."""
    spool = _synthetic_spool(tmp_path, done=10_000, done_shards=200)
    pending = [_prop_spec(index) for index in range(8)]
    assert spool.enqueue_many(list(pending)) == len(pending)

    with _counting_fs() as counts:
        assert not spool.idle()
    assert counts["scandir"] + counts["stat"] < 100  # vs 10_000 entries

    # And on a drained spool (claim+ack the pending work) it stays bounded.
    while (batch := spool.claim_batch("scale-worker", limit=100)) is not None:
        for spec in batch.specs:
            spool.ack(spec.task_id)
    with _counting_fs() as counts:
        assert spool.idle()
    assert counts["scandir"] + counts["stat"] < 100


def test_submitter_polling_reads_only_watched_journals(tmp_path):
    """Each tail poll costs one journal read per *watched* shard — the 10k
    finished tasks and their 200 journals are never touched."""
    spool = _synthetic_spool(tmp_path, done=10_000, done_shards=200)
    watched = [_prop_spec(index) for index in range(4)]  # 4 distinct shards
    assert spool.enqueue_many(list(watched)) == len(watched)
    tail = spool.tail([spec.task_id for spec in watched])

    with _counting_fs() as counts:
        assert tail.poll() == []
    assert counts["scandir"] == 0  # polling never lists directories
    assert counts["stat"] < 30

    batch = spool.claim_batch("poll-worker", limit=1)
    assert batch is not None
    spool.ack(batch.specs[0].task_id)
    with _counting_fs() as counts:
        events = tail.poll()
    assert {"op": "done", "id": batch.specs[0].task_id} in events
    assert counts["scandir"] == 0 and counts["stat"] < 30


def test_cache_stats_reads_one_journal_per_shard(tmp_path):
    """``cache stats`` on a 10k-entry cache is one journal read per shard:
    the entries themselves are never stat'ed or listed."""
    shards = 64
    per_shard = 157  # 64 * 157 = 10_048 entries
    for shard_index in range(shards):
        shard = f"{shard_index:02x}"
        shard_dir = tmp_path / shard
        shard_dir.mkdir(parents=True)
        with open(shard_dir / ".index.jsonl", "w", encoding="utf-8") as journal:
            for entry in range(per_shard):
                record = {
                    "kind": "entry",
                    "path": f"{shard}/deadbeef/least-waste/{entry}.json",
                    "bytes": 64,
                    "version": "2",
                }
                journal.write(json.dumps(record) + "\n")

    cache = ResultCache(tmp_path)
    with _counting_fs() as counts:
        stats = cache.stats()
    assert stats.entries == shards * per_shard
    assert stats.total_bytes == shards * per_shard * 64
    # One root listing + an existence probe and read per journal — far from
    # the ~10k stats a per-entry walk would cost.
    assert counts["scandir"] <= 5
    assert counts["stat"] <= shards * 4 + 10
    assert counts["scandir"] + counts["stat"] < 1_000

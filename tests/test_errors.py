"""Exception hierarchy."""

from __future__ import annotations

import pytest

from repro.errors import (
    AnalysisError,
    ConfigurationError,
    ReproError,
    SchedulingError,
    SimulationError,
)


@pytest.mark.parametrize(
    "exc_type",
    [ConfigurationError, SchedulingError, SimulationError, AnalysisError],
)
def test_all_errors_derive_from_repro_error(exc_type):
    assert issubclass(exc_type, ReproError)
    with pytest.raises(ReproError):
        raise exc_type("boom")


def test_repro_error_is_an_exception():
    assert issubclass(ReproError, Exception)


def test_errors_are_distinct():
    assert not issubclass(ConfigurationError, SimulationError)
    assert not issubclass(SimulationError, ConfigurationError)

"""Named random streams (repro.sim.rng)."""

from __future__ import annotations

import numpy as np

from repro.sim.rng import RandomStreams


def test_same_name_returns_same_generator():
    streams = RandomStreams(seed=1)
    assert streams.get("failures") is streams.get("failures")


def test_streams_are_reproducible_across_instances():
    a = RandomStreams(seed=7).get("workload").random(8)
    b = RandomStreams(seed=7).get("workload").random(8)
    assert np.allclose(a, b)


def test_streams_independent_of_access_order():
    first = RandomStreams(seed=3)
    _ = first.get("other")
    a = first.get("workload").random(4)

    second = RandomStreams(seed=3)
    b = second.get("workload").random(4)
    assert np.allclose(a, b)


def test_different_names_produce_different_sequences():
    streams = RandomStreams(seed=5)
    a = streams.get("alpha").random(16)
    b = streams.get("beta").random(16)
    assert not np.allclose(a, b)


def test_different_seeds_produce_different_sequences():
    a = RandomStreams(seed=1).get("x").random(16)
    b = RandomStreams(seed=2).get("x").random(16)
    assert not np.allclose(a, b)


def test_spawn_children_are_reproducible_and_distinct():
    parent = RandomStreams(seed=11)
    child_a = parent.spawn(0)
    child_b = parent.spawn(1)
    again = RandomStreams(seed=11).spawn(0)
    assert child_a.seed == again.seed
    assert child_a.seed != child_b.seed
    assert np.allclose(child_a.get("x").random(4), again.get("x").random(4))


def test_seed_property_round_trips():
    assert RandomStreams(seed=99).seed == 99
    assert RandomStreams().seed is None

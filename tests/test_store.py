"""The pluggable result-store layer (repro.store).

Contract under test: the ``filesystem`` backend *is* the historical
``ResultCache`` (same class, same bytes), the ``sqlite`` backend holds the
same records in one WAL-mode file, ``stats``/``gc`` report identically over
either, and ``copy_store`` migrates a cache losslessly in both directions —
round-tripping filesystem -> SQLite -> filesystem reproduces every entry
and trace sidecar byte-for-byte.
"""

from __future__ import annotations

import json
import math
import sqlite3

import pytest

from repro.errors import ConfigurationError
from repro.exec.cache import ResultCache
from repro.exec.digest import DIGEST_VERSION
from repro.store import (
    DEFAULT_STORE,
    FilesystemStore,
    SqliteStore,
    copy_store,
    open_store,
    register_store,
    store_kinds,
)

D1 = "a" * 64
D2 = "b" * 64


def _fill(store, *, traces: bool = True) -> None:
    store.put(D1, "least-waste", 7, 0.125)
    store.put(D1, "least-waste", 8, 0.1234567890123456789)  # repr-exact float
    store.put(D2, "ordered-daly", 7, 0.5)
    if traces:
        store.put_trace(D1, "least-waste", 7, {"events": [1, 2], "waste": 0.125})


# ------------------------------------------------------------------ registry
def test_registry_lists_builtins_and_default():
    assert {"filesystem", "sqlite"} <= set(store_kinds())
    assert DEFAULT_STORE == "filesystem"


def test_open_store_unknown_kind_suggests_close_match(tmp_path):
    with pytest.raises(ConfigurationError, match=r"did you mean 'sqlite'\?"):
        open_store("sqlte", tmp_path / "x")
    with pytest.raises(ConfigurationError, match="expected one of"):
        open_store("redis", tmp_path / "x")


def test_open_store_must_exist(tmp_path):
    with pytest.raises(ConfigurationError, match="no cache at"):
        open_store("filesystem", tmp_path / "absent", must_exist=True)
    # Without must_exist the path is created on demand (both backends).
    open_store("filesystem", tmp_path / "fs").close()
    open_store("sqlite", tmp_path / "db.sqlite").close()
    assert (tmp_path / "fs").is_dir() and (tmp_path / "db.sqlite").is_file()


def test_register_store_rejects_duplicates_and_blank_names(tmp_path):
    with pytest.raises(ConfigurationError, match="already registered"):
        register_store("sqlite", lambda path: SqliteStore(path))
    with pytest.raises(ConfigurationError):
        register_store("", lambda path: SqliteStore(path))
    # replace_existing is the explicit escape hatch (restore immediately).
    register_store("sqlite", lambda path: SqliteStore(path), replace_existing=True)
    assert isinstance(open_store("sqlite", tmp_path / "z.sqlite"), SqliteStore)


def test_filesystem_store_is_the_result_cache():
    # Identity by inheritance: the default backend cannot drift from the
    # cache layout the golden pins verify.
    assert issubclass(FilesystemStore, ResultCache)
    assert FilesystemStore.kind == "filesystem"


# ------------------------------------------------------------------ sqlite
def test_sqlite_roundtrip_and_counters(tmp_path):
    store = SqliteStore(tmp_path / "db.sqlite")
    assert store.get(D1, "least-waste", 7) is None
    assert store.misses == 1
    store.put(D1, "least-waste", 7, 0.1234567890123456789)
    assert store.get(D1, "least-waste", 7) == 0.1234567890123456789
    assert (store.hits, store.misses, store.writes) == (1, 1, 1)
    # probe() never perturbs the hit/miss counters (ResultStore contract).
    assert store.probe(D1, "least-waste", 7) == 0.1234567890123456789
    assert (store.hits, store.misses) == (1, 1)
    assert len(store) == 1
    store.close()


def test_sqlite_trace_sidecar_roundtrip_and_version_discipline(tmp_path):
    store = SqliteStore(tmp_path / "db.sqlite")
    payload = {"events": [{"t": 0.5}], "waste": 0.25}
    store.put_trace(D1, "least-waste", 7, payload)
    # Like the filesystem cache, the payload reads back with its version stamp.
    assert store.get_trace(D1, "least-waste", 7) == {**payload, "version": DIGEST_VERSION}
    # A sidecar stamped by a different digest version is a miss, exactly
    # like the filesystem cache.
    conn = sqlite3.connect(str(store.root))
    conn.execute(
        "UPDATE traces SET body = ?, version = ?",
        (json.dumps({**payload, "version": "1"}), "1"),
    )
    conn.commit()
    conn.close()
    assert store.get_trace(D1, "least-waste", 7) is None
    store.close()


def test_sqlite_non_finite_and_corrupt_rows_read_as_misses(tmp_path):
    store = SqliteStore(tmp_path / "db.sqlite")
    store.put_raw_entry(D1, "s", 1, "this is not json")
    store.put_raw_entry(D1, "s", 2, json.dumps({"value": "NaN", "version": "2"}))
    assert store.get(D1, "s", 1) is None
    assert store.get(D1, "s", 2) is None
    stats = store.stats()
    assert stats.entries == 2
    assert stats.versions.get("corrupt") == 1  # unparseable body
    assert stats.versions.get("2") == 1  # parseable body, unusable value
    store.close()


def test_sqlite_rejects_foreign_and_newer_files(tmp_path):
    garbage = tmp_path / "garbage.sqlite"
    garbage.write_text("definitely not a database")
    with pytest.raises(ConfigurationError, match="not a sqlite result store"):
        SqliteStore(garbage)
    newer = tmp_path / "newer.sqlite"
    SqliteStore(newer).close()
    conn = sqlite3.connect(str(newer))
    conn.execute("UPDATE meta SET value = '99' WHERE key = 'schema_version'")
    conn.commit()
    conn.close()
    with pytest.raises(ConfigurationError, match="schema v99, newer"):
        SqliteStore(newer)
    with pytest.raises(ConfigurationError, match="is a directory"):
        SqliteStore(tmp_path)


# ------------------------------------------------------ backend equivalence
@pytest.mark.parametrize("kind", ["filesystem", "sqlite"])
def test_stats_identical_across_backends(tmp_path, kind):
    store = open_store(kind, tmp_path / ("s" if kind == "filesystem" else "s.sqlite"))
    _fill(store)
    stats = store.stats()
    assert stats.entries == 3
    assert stats.versions == {DIGEST_VERSION: 3}
    assert stats.trace_sidecars == 1
    assert stats.trace_bytes > 0
    store.close()


def test_stats_and_gc_reports_agree_between_backends(tmp_path):
    fs = open_store("filesystem", tmp_path / "fs")
    sq = open_store("sqlite", tmp_path / "db.sqlite")
    for store in (fs, sq):
        _fill(store)
    assert fs.stats() == sq.stats()

    # gc by digest version: same scan/removal accounting on both engines
    # (an entry and its sidecar count as one removal), and --dry-run
    # touches nothing.
    for store in (fs, sq):
        dry = store.gc(digest_version=DIGEST_VERSION, dry_run=True)
        assert (dry.scanned, dry.removed) == (3, 3)
        assert store.stats().entries == 3  # dry run removed nothing
    real_fs = fs.gc(digest_version=DIGEST_VERSION)
    real_sq = sq.gc(digest_version=DIGEST_VERSION)
    assert real_fs == real_sq
    assert len(fs) == len(sq) == 0
    assert fs.stats().trace_sidecars == sq.stats().trace_sidecars == 0
    fs.close()
    sq.close()


def test_sqlite_gc_older_than_and_orphan_sweep(tmp_path):
    store = SqliteStore(tmp_path / "db.sqlite")
    _fill(store)
    # Age one entry far into the past; its sidecar goes with it.
    conn = sqlite3.connect(str(store.root))
    conn.execute(
        "UPDATE entries SET mtime = mtime - 864000 WHERE seed = 7 AND digest = ?",
        (D1,),
    )
    conn.commit()
    conn.close()
    report = store.gc(older_than_s=86400.0)
    assert report.scanned == 3
    assert report.removed == 1  # the aged entry, its sidecar riding along
    assert store.probe(D1, "least-waste", 8) is not None  # younger survivor
    assert store.get_trace(D1, "least-waste", 7) is None
    store.close()


# ------------------------------------------------------------------ migration
def _records(store):
    return (
        {(r.digest, r.strategy, r.seed): r.body for r in store.iter_raw_entries()},
        {(r.digest, r.strategy, r.seed): r.body for r in store.iter_raw_traces()},
    )


def test_migration_roundtrip_is_byte_identical(tmp_path):
    fs = open_store("filesystem", tmp_path / "fs")
    _fill(fs)
    sq = open_store("sqlite", tmp_path / "db.sqlite")
    report = copy_store(fs, sq)
    assert (report.entries, report.traces) == (3, 1)
    back = open_store("filesystem", tmp_path / "back")
    copy_store(sq, back)

    assert _records(fs) == _records(sq) == _records(back)
    # Stronger than record equality: the round-tripped directory holds the
    # same relative entry/trace files with the same bytes.
    original = {
        p.relative_to(fs.root): p.read_bytes()
        for p in fs.root.rglob("*")
        if p.is_file() and p.name != ".index.jsonl"
    }
    returned = {
        p.relative_to(back.root): p.read_bytes()
        for p in back.root.rglob("*")
        if p.is_file() and p.name != ".index.jsonl"
    }
    assert original == returned
    # The shard journals record the same lines (append order may differ).
    for shard in fs.root.glob("*/.index.jsonl"):
        twin = back.root / shard.relative_to(fs.root)
        assert sorted(shard.read_text().splitlines()) == sorted(
            twin.read_text().splitlines()
        )
    # The values read back identically (repr-exact floats included).
    for store in (fs, sq, back):
        assert store.get(D1, "least-waste", 8) == 0.1234567890123456789
        assert store.get_trace(D1, "least-waste", 7)["waste"] == 0.125
        store.close()


def test_migration_is_idempotent_and_preserves_corrupt_bodies(tmp_path):
    fs = open_store("filesystem", tmp_path / "fs")
    _fill(fs)
    fs.put_raw_entry(D2, "weird", 3, "not json at all")  # migrated verbatim
    sq = open_store("sqlite", tmp_path / "db.sqlite")
    first = copy_store(fs, sq)
    second = copy_store(fs, sq)  # overwrites with identical bytes
    assert first == second
    assert _records(fs) == _records(sq)
    assert sq.get(D2, "weird", 3) is None  # corrupt stays unusable, not lost
    fs.close()
    sq.close()


def test_raw_iteration_order_is_deterministic(tmp_path):
    fs = open_store("filesystem", tmp_path / "fs")
    sq = open_store("sqlite", tmp_path / "db.sqlite")
    for store in (fs, sq):
        _fill(store)
        keys = [(r.digest, r.strategy, r.seed) for r in store.iter_raw_entries()]
        assert keys == sorted(keys)
        store.close()


def test_store_value_fidelity_across_backends(tmp_path):
    # The exact doubles the simulator produces survive each backend bit-
    # for-bit (sqlite REAL columns and JSON repr both preserve IEEE 754).
    values = [0.1 + 0.2, 1e-300, math.pi, 2**-52, 0.9999999999999999]
    fs = open_store("filesystem", tmp_path / "fs")
    sq = open_store("sqlite", tmp_path / "db.sqlite")
    for store in (fs, sq):
        for seed, value in enumerate(values):
            store.put(D1, "s", seed, value)
        got = [store.probe(D1, "s", seed) for seed in range(len(values))]
        assert [repr(g) for g in got] == [repr(v) for v in values]
        store.close()

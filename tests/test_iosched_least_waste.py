"""Least-Waste token scheduling (repro.iosched.least_waste)."""

from __future__ import annotations

import pytest

from repro.apps.job import Job
from repro.apps.phases import IOKind
from repro.iosched.base import IORequest
from repro.iosched.least_waste import LeastWasteScheduler
from repro.platform.io_subsystem import IOSubsystem
from repro.sim.engine import SimulationEngine
from repro.units import HOUR


@pytest.fixture
def engine() -> SimulationEngine:
    return SimulationEngine()


@pytest.fixture
def io(engine) -> IOSubsystem:
    return IOSubsystem(engine, bandwidth_bytes_per_s=100.0)


def test_flags():
    assert LeastWasteScheduler.nonblocking_checkpoints
    assert not LeastWasteScheduler.shares_bandwidth
    assert LeastWasteScheduler.name == "least-waste"


def test_serves_blocking_io_of_big_job_before_checkpoint_when_failures_rare(
    engine, io, tiny_classes
):
    # Huge MTBF: the waste of keeping a big job idle dominates the failure
    # exposure of a postponed checkpoint, so the blocking I/O should win even
    # though the checkpoint request arrived first.
    scheduler = LeastWasteScheduler(engine, io, node_mtbf_s=1e12)
    order: list[str] = []
    ckpt_job = Job(app_class=tiny_classes[1], total_work_s=HOUR)
    ckpt_job.last_capture_time = 0.0
    io_job = Job(app_class=tiny_classes[0], total_work_s=HOUR)

    blocker = IORequest(ckpt_job, IOKind.CHECKPOINT, 1000.0, 0.0, on_complete=lambda r: order.append("ckpt"))
    waiting_io = IORequest(io_job, IOKind.INPUT, 1000.0, 0.0, on_complete=lambda r: order.append("input"))
    occupant = IORequest(io_job, IOKind.OUTPUT, 100.0, 0.0, on_complete=lambda r: order.append("warmup"))

    # Occupy the token first so that both contenders are pending together.
    scheduler.submit(occupant)
    scheduler.submit(blocker)
    scheduler.submit(waiting_io)
    engine.run()
    assert order[0] == "warmup"
    assert order[1] == "input"
    assert order[2] == "ckpt"


def test_serves_heavily_exposed_checkpoint_first_when_failures_frequent(
    engine, io, tiny_classes
):
    # Tiny MTBF and a checkpoint that has not been taken for a long time: the
    # expected lost work dominates, so the checkpoint should be served before
    # the (small) blocking I/O of a small job.
    scheduler = LeastWasteScheduler(engine, io, node_mtbf_s=5_000.0)
    order: list[str] = []
    exposed = Job(app_class=tiny_classes[0], total_work_s=10 * HOUR)
    exposed.last_capture_time = 0.0
    small = Job(app_class=tiny_classes[1], total_work_s=HOUR)

    occupant = IORequest(small, IOKind.OUTPUT, 100.0, 0.0, on_complete=lambda r: order.append("warmup"))
    scheduler.submit(occupant)
    # By the time the token frees (t=1), the exposed job has gone 4 hours
    # without a checkpoint (captured at t=-...): emulate by submitting late.
    engine.schedule(0.5, lambda: scheduler.submit(
        IORequest(exposed, IOKind.CHECKPOINT, 500.0, 0.5, on_complete=lambda r: order.append("ckpt"))
    ))
    engine.schedule(0.5, lambda: scheduler.submit(
        IORequest(small, IOKind.INPUT, 500.0, 0.5, on_complete=lambda r: order.append("input"))
    ))
    exposed.last_capture_time = -4 * HOUR  # long exposure window
    engine.run()
    assert order[0] == "warmup"
    assert order[1] == "ckpt"
    assert order[2] == "input"


def test_single_candidate_served_immediately(engine, io, tiny_classes):
    scheduler = LeastWasteScheduler(engine, io, node_mtbf_s=1e6)
    job = Job(app_class=tiny_classes[0], total_work_s=HOUR)
    done: list[float] = []
    scheduler.submit(IORequest(job, IOKind.CHECKPOINT, 200.0, 0.0, on_complete=lambda r: done.append(engine.now)))
    engine.run()
    assert done == [pytest.approx(2.0)]


def test_checkpoint_candidate_uses_submission_time_when_never_captured(engine, io, tiny_classes):
    # A job whose last_capture_time is unset must not crash the scoring.
    scheduler = LeastWasteScheduler(engine, io, node_mtbf_s=1e6)
    job_a = Job(app_class=tiny_classes[0], total_work_s=HOUR)
    job_b = Job(app_class=tiny_classes[1], total_work_s=HOUR)
    assert job_a.last_capture_time is None
    done: list[str] = []
    scheduler.submit(IORequest(job_a, IOKind.CHECKPOINT, 200.0, 0.0, on_complete=lambda r: done.append("a")))
    scheduler.submit(IORequest(job_b, IOKind.CHECKPOINT, 200.0, 0.0, on_complete=lambda r: done.append("b")))
    engine.run()
    assert sorted(done) == ["a", "b"]


def test_zero_volume_request_handled(engine, io, tiny_classes):
    scheduler = LeastWasteScheduler(engine, io, node_mtbf_s=1e6)
    job = Job(app_class=tiny_classes[0], total_work_s=HOUR)
    done: list[str] = []
    scheduler.submit(IORequest(job, IOKind.INPUT, 0.0, 0.0, on_complete=lambda r: done.append("zero")))
    engine.run()
    assert done == ["zero"]

"""Failure trace generation (repro.platform.failures)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.platform.failures import FailureEvent, FailureTrace, generate_failure_trace
from repro.units import DAY


def test_trace_is_sorted_and_indexable():
    events = [FailureEvent(5.0, 1), FailureEvent(1.0, 2), FailureEvent(3.0, 0)]
    trace = FailureTrace(events, horizon=10.0)
    assert [e.time for e in trace] == [1.0, 3.0, 5.0]
    assert trace[0].node_id == 2
    assert len(trace) == 3
    assert trace.horizon == 10.0


def test_trace_rejects_out_of_horizon_events():
    with pytest.raises(ConfigurationError):
        FailureTrace([FailureEvent(11.0, 0)], horizon=10.0)
    with pytest.raises(ConfigurationError):
        FailureTrace([FailureEvent(-1.0, 0)], horizon=10.0)


def test_empirical_mtbf():
    trace = FailureTrace([FailureEvent(2.0, 0), FailureEvent(8.0, 1)], horizon=10.0)
    assert trace.empirical_mtbf() == pytest.approx(5.0)
    assert FailureTrace([], horizon=10.0).empirical_mtbf() == float("inf")


def test_between_filters_by_time_and_rebases_to_the_window():
    events = [FailureEvent(float(t), t) for t in range(10)]
    trace = FailureTrace(events, horizon=20.0)
    window = trace.between(3.0, 6.0)
    # Times are shifted by -start; node ids identify the original failures.
    assert [e.time for e in window] == [0.0, 1.0, 2.0]
    assert [e.node_id for e in window] == [3, 4, 5]
    assert window.horizon == 3.0


def test_between_empirical_mtbf_uses_the_window_length():
    # Regression: the sub-trace used to keep the parent's full horizon, so a
    # 30 s window over a 100 s trace reported MTBF 50 s instead of 15 s.
    events = [FailureEvent(10.0, 0), FailureEvent(25.0, 1)]
    trace = FailureTrace(events, horizon=100.0)
    window = trace.between(0.0, 30.0)
    assert len(window) == 2
    assert window.horizon == 30.0
    assert window.empirical_mtbf() == pytest.approx(15.0)
    # An empty window still reports over its own length (inf, not parent's).
    assert trace.between(40.0, 70.0).empirical_mtbf() == float("inf")


def test_between_rejects_reversed_windows():
    trace = FailureTrace([FailureEvent(1.0, 0)], horizon=10.0)
    with pytest.raises(ConfigurationError):
        trace.between(6.0, 3.0)


def test_numpy_views():
    trace = FailureTrace([FailureEvent(1.0, 4), FailureEvent(2.0, 7)], horizon=5.0)
    assert np.allclose(trace.times, [1.0, 2.0])
    assert list(trace.node_ids) == [4, 7]


def test_generate_failure_trace_statistics(tiny_platform):
    horizon = 200.0 * DAY
    rng = np.random.default_rng(0)
    trace = generate_failure_trace(tiny_platform, horizon, rng)
    # Expected count = horizon / system MTBF; allow generous statistical slack.
    expected = horizon / tiny_platform.system_mtbf_s
    assert 0.5 * expected < len(trace) < 1.7 * expected
    assert all(0.0 <= e.time <= horizon for e in trace)
    assert all(0 <= e.node_id < tiny_platform.num_nodes for e in trace)
    # Times are strictly increasing (exponential gaps are a.s. positive).
    times = trace.times
    assert np.all(np.diff(times) > 0.0)


def test_generate_failure_trace_is_reproducible(tiny_platform):
    a = generate_failure_trace(tiny_platform, 30 * DAY, np.random.default_rng(42))
    b = generate_failure_trace(tiny_platform, 30 * DAY, np.random.default_rng(42))
    assert np.allclose(a.times, b.times)
    assert list(a.node_ids) == list(b.node_ids)


def test_generate_failure_trace_zero_horizon(tiny_platform):
    trace = generate_failure_trace(tiny_platform, 0.0, np.random.default_rng(1))
    assert len(trace) == 0


def test_generate_failure_trace_negative_horizon_rejected(tiny_platform):
    with pytest.raises(ConfigurationError):
        generate_failure_trace(tiny_platform, -1.0, np.random.default_rng(1))

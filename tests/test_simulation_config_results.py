"""Simulation configuration and result records."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.simulation.accounting import Accounting, Category
from repro.simulation.config import SimulationConfig
from repro.simulation.results import SimulationResult, WasteBreakdown
from repro.units import DAY, HOUR


# ------------------------------------------------------------------- config
def test_config_defaults_and_window(tiny_config):
    config = tiny_config()
    assert config.strategy == "least-waste"
    start, end = config.measurement_window
    assert start == pytest.approx(2 * HOUR)
    assert end == pytest.approx(config.horizon_s - 2 * HOUR)


def test_config_caps_warmup_and_cooldown(tiny_config):
    config = tiny_config(horizon_s=1 * DAY, warmup_s=2 * DAY, cooldown_s=3 * DAY)
    assert config.effective_warmup_s == pytest.approx(0.25 * DAY)
    assert config.effective_cooldown_s == pytest.approx(0.25 * DAY)
    start, end = config.measurement_window
    assert start < end


def test_config_validation(tiny_platform, tiny_classes, tiny_config):
    with pytest.raises(ConfigurationError):
        tiny_config(strategy="bogus")
    with pytest.raises(ConfigurationError):
        tiny_config(horizon_s=0.0)
    with pytest.raises(ConfigurationError):
        tiny_config(warmup_s=-1.0)
    with pytest.raises(ConfigurationError):
        tiny_config(fixed_period_s=0.0)
    with pytest.raises(ConfigurationError):
        SimulationConfig(platform=tiny_platform, classes=())
    # A class larger than the platform is rejected up front.
    big = tiny_classes[0]
    small_platform = tiny_platform.with_num_nodes(big.nodes - 1)
    with pytest.raises(ConfigurationError):
        SimulationConfig(platform=small_platform, classes=(big,))


def test_config_variants(tiny_config, tiny_platform):
    config = tiny_config()
    assert config.with_strategy("ordered-daly").strategy == "ordered-daly"
    assert config.with_seed(99).seed == 99
    other_platform = tiny_platform.with_num_nodes(32)
    assert config.with_platform(other_platform).platform.num_nodes == 32
    spec = config.workload_spec()
    assert spec.min_duration_s == config.horizon_s
    assert spec.classes == config.classes


# ------------------------------------------------------------------ results
def make_breakdown(**overrides) -> WasteBreakdown:
    values = dict(
        compute=700.0,
        base_io=100.0,
        io_delay=40.0,
        checkpoint=100.0,
        checkpoint_wait=20.0,
        recovery=30.0,
        lost_work=10.0,
        allocated=1000.0,
    )
    values.update(overrides)
    return WasteBreakdown(**values)


def test_breakdown_totals_and_ratios():
    b = make_breakdown()
    assert b.useful == pytest.approx(800.0)
    assert b.waste == pytest.approx(200.0)
    assert b.waste_over_useful == pytest.approx(0.25)
    assert b.waste_ratio == pytest.approx(0.2)
    assert b.efficiency == pytest.approx(0.8)


def test_breakdown_degenerate_cases():
    empty = make_breakdown(
        compute=0.0, base_io=0.0, io_delay=0.0, checkpoint=0.0,
        checkpoint_wait=0.0, recovery=0.0, lost_work=0.0, allocated=0.0,
    )
    assert empty.waste_ratio == 0.0
    assert empty.efficiency == 1.0
    assert empty.waste_over_useful == 0.0
    pure_waste = make_breakdown(compute=0.0, base_io=0.0)
    assert pure_waste.waste_over_useful == float("inf")
    assert pure_waste.waste_ratio == pytest.approx(1.0)


def test_breakdown_from_accounting_round_trip():
    accounting = Accounting(0.0, 100.0)
    accounting.record_interval(Category.COMPUTE, 2.0, 0.0, 50.0)
    accounting.record_interval(Category.CHECKPOINT, 1.0, 0.0, 30.0)
    accounting.record_allocation(2.0, 0.0, 100.0)
    breakdown = WasteBreakdown.from_accounting(accounting)
    assert breakdown.compute == pytest.approx(100.0)
    assert breakdown.checkpoint == pytest.approx(30.0)
    assert breakdown.allocated == pytest.approx(200.0)


def test_result_summary_mentions_key_fields():
    result = SimulationResult(
        strategy="least-waste",
        breakdown=make_breakdown(),
        horizon_s=86400.0,
        window=(3600.0, 82800.0),
        jobs_submitted=10,
        jobs_completed=8,
        jobs_failed=2,
        restarts_submitted=2,
        failures_total=3,
        failures_effective=2,
        checkpoints_completed=42,
        checkpoints_requested=45,
        node_utilization=0.99,
        io_busy_fraction=0.5,
        events_fired=1234,
    )
    assert result.waste_ratio == pytest.approx(0.2)
    assert result.efficiency == pytest.approx(0.8)
    text = result.summary()
    assert "least-waste" in text
    assert "waste ratio" in text
    assert "checkpoint" in text
    assert "8/10" in text

"""Discrete-event engine (repro.sim.engine)."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim.engine import SimulationEngine


def test_clock_advances_to_event_times():
    engine = SimulationEngine()
    times: list[float] = []
    engine.schedule(5.0, lambda: times.append(engine.now))
    engine.schedule(2.0, lambda: times.append(engine.now))
    engine.run()
    assert times == [2.0, 5.0]
    assert engine.now == 5.0


def test_run_until_horizon_leaves_later_events_pending():
    engine = SimulationEngine()
    fired: list[float] = []
    engine.schedule(1.0, lambda: fired.append(1.0))
    engine.schedule(10.0, lambda: fired.append(10.0))
    end = engine.run(until=5.0)
    assert fired == [1.0]
    assert end == 5.0
    assert engine.now == 5.0
    assert engine.pending_events == 1


def test_events_can_schedule_more_events():
    engine = SimulationEngine()
    fired: list[float] = []

    def chain(depth: int) -> None:
        fired.append(engine.now)
        if depth > 0:
            engine.schedule(1.0, chain, depth - 1)

    engine.schedule(0.0, chain, 3)
    engine.run()
    assert fired == [0.0, 1.0, 2.0, 3.0]


def test_schedule_at_absolute_time():
    engine = SimulationEngine(start_time=100.0)
    seen: list[float] = []
    engine.schedule_at(150.0, lambda: seen.append(engine.now))
    engine.run()
    assert seen == [150.0]


def test_scheduling_in_the_past_rejected():
    engine = SimulationEngine(start_time=10.0)
    with pytest.raises(SimulationError):
        engine.schedule(-1.0, lambda: None)
    with pytest.raises(SimulationError):
        engine.schedule_at(5.0, lambda: None)


def test_cancel_prevents_callback():
    engine = SimulationEngine()
    fired: list[str] = []
    event = engine.schedule(1.0, fired.append, "nope")
    engine.cancel(event)
    engine.cancel(None)  # no-op
    engine.run()
    assert fired == []


def test_stop_aborts_the_run():
    engine = SimulationEngine()
    fired: list[int] = []
    engine.schedule(1.0, lambda: (fired.append(1), engine.stop()))
    engine.schedule(2.0, lambda: fired.append(2))
    engine.run()
    assert fired == [1]
    assert engine.pending_events == 1


def test_max_events_guard():
    engine = SimulationEngine(max_events=10)

    def loop() -> None:
        engine.schedule(1.0, loop)

    engine.schedule(0.0, loop)
    with pytest.raises(SimulationError):
        engine.run()


def test_events_fired_counter():
    engine = SimulationEngine()
    for index in range(5):
        engine.schedule(float(index), lambda: None)
    engine.run()
    assert engine.events_fired == 5


def test_run_is_not_reentrant():
    engine = SimulationEngine()

    def inner() -> None:
        with pytest.raises(SimulationError):
            engine.run()

    engine.schedule(1.0, inner)
    engine.run()


def test_run_until_advances_clock_even_without_events():
    engine = SimulationEngine()
    assert engine.run(until=42.0) == 42.0
    assert engine.now == 42.0

"""Fault-injection tests of the sharded work spool.

Every filesystem side effect of the spool goes through
:mod:`repro.distributed.fsops`, so these tests can fail or delay chosen
operations at chosen points and prove the spool's two load-bearing
contracts hold under filesystem misbehaviour:

* a claim is never granted to two workers, even when renames fail
  mid-claim and are retried;
* half-written advisory state (index journal lines, ``spool.json``, lease
  files) is treated as *absent* — it degrades performance, never
  correctness.
"""

from __future__ import annotations

import json
import os
import threading
import time

from repro.distributed import TaskSpec, WorkSpool
from repro.distributed.spool import SPOOL_LAYOUT_VERSION
from repro.distributed.tasks import shard_of


def _toy_task(seed: int) -> float:
    return float(seed % 7) / 7.0


def _spec(seed: int, digest_char: str = "a") -> TaskSpec:
    return TaskSpec(
        task=_toy_task, digest=digest_char * 64, strategy="least-waste", seeds=(seed,)
    )


# ------------------------------------------------------- no double grants
def test_claims_never_double_granted_under_rename_faults(tmp_path, fs_faults):
    """Four claimers hammering a faulty filesystem must still partition the
    queue: every task claimed exactly once, none lost, none duplicated."""
    submit = WorkSpool(tmp_path)
    specs = [
        _spec(seed, digest_char) for seed in range(5) for digest_char in "abcd"
    ]  # four shards, five tasks each
    assert submit.enqueue_many(list(specs)) == len(specs)

    fs_faults(rate=0.15, ops={"rename"}, seed=1234)

    claimed: list[list[str]] = [[] for _ in range(4)]
    spools = [WorkSpool(tmp_path) for _ in range(4)]

    def drain(worker: int) -> None:
        misses = 0
        while misses < 25:  # injected faults make transient "nothing" normal
            batch = spools[worker].claim_batch(f"w{worker}", limit=3)
            if batch is None:
                misses += 1
                time.sleep(0.001)
                continue
            misses = 0
            for spec in batch.specs:
                claimed[worker].append(spec.task_id)
                spools[worker].ack(spec.task_id, worker_id=f"w{worker}")

    threads = [threading.Thread(target=drain, args=(i,)) for i in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)

    all_claimed = [task_id for per_worker in claimed for task_id in per_worker]
    assert sorted(all_claimed) == sorted(spec.task_id for spec in specs)
    assert len(set(all_claimed)) == len(specs)  # never double-granted
    fs_faults(None)
    status = WorkSpool(tmp_path).status()
    assert status.drained and status.done == len(specs)


def test_injected_faults_are_counted_and_disarmed(tmp_path, fs_faults):
    injector = fs_faults(rate=1.0, ops={"stat"}, seed=0)
    spool = WorkSpool(tmp_path)
    spec = _spec(1)
    spool.enqueue(spec)  # exists() fails injected -> treated as "not queued"
    assert injector.injected > 0
    fs_faults(None)
    assert spool.status().pending == 1  # the write itself was untouched


# ------------------------------------------- half-written state is absent
def test_torn_journal_line_is_invisible_until_completed(tmp_path):
    spool = WorkSpool(tmp_path)
    spec = _spec(3)
    shard = shard_of(spec.task_id)
    journal = spool.journal_path(shard)
    tail = spool.tail([spec.task_id])

    journal.parent.mkdir(parents=True, exist_ok=True)
    with open(journal, "a", encoding="utf-8") as handle:
        handle.write(json.dumps({"op": "done", "id": spec.task_id}))  # no \n

    assert tail.poll() == []  # a torn append is absent, not an error
    assert spool.index_snapshot(shard) == {"done": set(), "failed": set()}

    with open(journal, "a", encoding="utf-8") as handle:
        handle.write("\n")  # the writer finishes its line
    events = tail.poll()
    assert events == [{"op": "done", "id": spec.task_id}]
    assert spool.index_snapshot(shard)["done"] == {spec.task_id}


def test_garbage_journal_lines_are_skipped(tmp_path):
    spool = WorkSpool(tmp_path)
    spec = _spec(4)
    shard = shard_of(spec.task_id)
    journal = spool.journal_path(shard)
    journal.parent.mkdir(parents=True, exist_ok=True)
    journal.write_text('{broken json\n[1, 2, 3]\n{"op": "failed", "id": "%s"}\n' % spec.task_id)
    snapshot = spool.index_snapshot(shard)
    assert snapshot == {"done": set(), "failed": {spec.task_id}}


def test_half_written_spool_meta_is_treated_as_absent(tmp_path):
    """A crash mid-write of ``spool.json`` must not wedge the spool: the
    half-written file reads as absent and the (idempotent) migration simply
    re-runs, then re-pins the layout."""
    first = WorkSpool(tmp_path)
    spec = _spec(5)
    first.enqueue(spec)
    (tmp_path / "spool.json").write_text('{"lay')  # torn write

    reopened = WorkSpool(tmp_path)
    assert reopened.status().pending == 1
    meta = json.loads((tmp_path / "spool.json").read_text())
    assert meta["layout"] == SPOOL_LAYOUT_VERSION


def test_half_written_lease_falls_back_to_directory_mtime(tmp_path):
    """A torn lease file carries no TTL; the sweep must judge the batch by
    its directory mtime under the sweeper's own TTL instead of trusting
    (or crashing on) the partial JSON."""
    spool = WorkSpool(tmp_path, lease_ttl_s=0.05)
    spec = _spec(6)
    spool.enqueue(spec)
    batch = spool.claim_batch("doomed", limit=1)
    assert batch is not None
    batch_dir = tmp_path / "claims" / batch.batch_id
    (batch_dir / ".lease.json").write_text('{"worker": "doomed", "lease_ttl')
    past = time.time() - 60.0
    os.utime(batch_dir, (past, past))
    os.utime(batch_dir / ".lease.json", (past, past))
    assert spool.reclaim_expired() == [spec.task_id]
    assert spool.status().pending == 1 and spool.status().claimed == 0


def test_flat_spool_is_migrated_on_open(tmp_path):
    """A layout-1 (flat) spool auto-migrates: queued tasks move into their
    shards, done/failed markers keep their meaning, orphaned flat claims
    return to the queue, and the journal reflects the directories."""
    for state in ("tasks", "claims", "done", "failed"):
        (tmp_path / state).mkdir(parents=True)
    queued, claimed, finished = _spec(1), _spec(2), _spec(3)
    (tmp_path / "tasks" / f"{queued.task_id}.json").write_text(queued.encode())
    (tmp_path / "claims" / f"{claimed.task_id}.json").write_text(claimed.encode())
    (tmp_path / "claims" / f"{claimed.task_id}.meta.json").write_text(
        '{"worker": "w0", "lease_ttl_s": 60.0}'
    )
    (tmp_path / "done" / f"{finished.task_id}.json").write_text(finished.encode())

    spool = WorkSpool(tmp_path)
    status = spool.status()
    assert status.pending == 2  # the queued task plus the re-queued claim
    assert status.claimed == 0 and status.done == 1
    assert spool.is_done(finished.task_id)
    shard = shard_of(finished.task_id)
    assert spool.index_snapshot(shard)["done"] == {finished.task_id}
    assert json.loads((tmp_path / "spool.json").read_text())["layout"] == SPOOL_LAYOUT_VERSION

    # Re-opening (or a concurrent second migration) is a no-op.
    again = WorkSpool(tmp_path)
    assert again.status() == status
    # The migrated spool is fully operational.
    drained = []
    while (spec := again.claim("w1")) is not None:
        drained.append(spec.task_id)
        again.ack(spec.task_id)
    assert sorted(drained) == sorted([queued.task_id, claimed.task_id])


def test_enqueue_retries_through_transient_write_faults(tmp_path, fs_faults):
    """A write that fails once (shard dir renamed away mid-claim, transient
    EIO) is retried with its parent re-created; only persistent failure
    surfaces as an error."""
    spool = WorkSpool(tmp_path)
    failures = iter([True, True, False])  # fail twice, then succeed

    def flaky_writes(op: str, path: str) -> None:
        if op == "write" and path.endswith(".json") and next(failures, False):
            raise OSError(f"injected: {op} {path}")

    fs_faults(flaky_writes)
    spec = _spec(7)
    assert spool.enqueue(spec) is True
    fs_faults(None)
    assert spool.status().pending == 1

"""Integration tests of the full simulator (repro.simulation.simulator)."""

from __future__ import annotations

import pytest

from repro.apps.job import Job
from repro.apps.phases import JobState
from repro.errors import SimulationError
from repro.platform.failures import FailureEvent, FailureTrace
from repro.simulation.simulator import Simulation, run_simulation
from repro.units import DAY, HOUR


def no_failures(horizon: float) -> FailureTrace:
    return FailureTrace([], horizon=horizon)


def single_job(tiny_classes, work_s=2 * HOUR, index=0) -> list[Job]:
    return [Job(app_class=tiny_classes[index], total_work_s=work_s, priority=0.0)]


# ------------------------------------------------------------ failure-free runs
@pytest.mark.parametrize("strategy", ["oblivious-fixed", "ordered-daly", "least-waste"])
def test_failure_free_single_job_completes(tiny_config, tiny_classes, strategy):
    config = tiny_config(strategy, horizon_s=1 * DAY, warmup_s=0.0, cooldown_s=0.0)
    sim = Simulation(
        config,
        jobs=single_job(tiny_classes),
        failure_trace=no_failures(config.horizon_s),
    )
    result = sim.run()
    job = sim.jobs[0]
    assert job.state is JobState.COMPLETED
    assert job.work_done_s == pytest.approx(job.total_work_s)
    assert result.jobs_completed == 1
    assert result.jobs_failed == 0
    assert result.restarts_submitted == 0
    assert result.failures_effective == 0
    # Without failures there is no recovery and no lost work.
    assert result.breakdown.recovery == 0.0
    assert result.breakdown.lost_work == 0.0
    assert result.breakdown.compute > 0.0
    assert 0.0 <= result.waste_ratio < 0.5


def test_failure_free_job_checkpoints_periodically(tiny_config, tiny_classes):
    # Fixed 1h period, 2h of work -> at least one checkpoint gets taken.
    config = tiny_config("ordered-fixed", horizon_s=1 * DAY, warmup_s=0.0, cooldown_s=0.0)
    sim = Simulation(
        config, jobs=single_job(tiny_classes), failure_trace=no_failures(config.horizon_s)
    )
    result = sim.run()
    assert result.checkpoints_completed >= 1
    assert result.breakdown.checkpoint > 0.0
    job = sim.jobs[0]
    assert job.checkpoints_completed >= 1
    assert job.work_protected_s > 0.0


def test_completion_time_accounts_for_io_and_checkpoints(tiny_config, tiny_classes):
    config = tiny_config("ordered-fixed", horizon_s=1 * DAY, warmup_s=0.0, cooldown_s=0.0)
    sim = Simulation(
        config, jobs=single_job(tiny_classes), failure_trace=no_failures(config.horizon_s)
    )
    sim.run()
    job = sim.jobs[0]
    alpha = tiny_classes[0]
    bandwidth = config.platform.io_bandwidth_bytes_per_s
    base_io = (alpha.input_bytes + alpha.output_bytes) / bandwidth
    ckpt_time = alpha.checkpoint_bytes / bandwidth
    expected_min = job.total_work_s + base_io + job.checkpoints_completed * ckpt_time
    assert job.end_time == pytest.approx(expected_min, rel=1e-6)


# ------------------------------------------------------------ failures & restarts
def test_single_failure_triggers_restart_and_recovery(tiny_config, tiny_classes):
    config = tiny_config("ordered-fixed", horizon_s=1 * DAY, warmup_s=0.0, cooldown_s=0.0)
    # The job runs on nodes [0..3]; fail node 0 in the middle of its second hour.
    trace = FailureTrace([FailureEvent(1.5 * HOUR, 0)], horizon=config.horizon_s)
    sim = Simulation(config, jobs=single_job(tiny_classes), failure_trace=trace)
    result = sim.run()

    original = sim.jobs[0]
    assert original.state is JobState.FAILED
    assert result.jobs_failed == 1
    assert result.restarts_submitted == 1
    assert result.failures_effective == 1
    # The first hourly checkpoint protected ~1h of work, so the lost work is
    # bounded by the exposure window and some work had to be re-done.
    assert result.breakdown.lost_work > 0.0
    assert result.breakdown.recovery > 0.0
    # The restart finished the remaining work within the horizon.
    assert result.jobs_completed == 1


def test_failure_on_idle_node_is_harmless(tiny_config, tiny_classes):
    config = tiny_config("least-waste", horizon_s=1 * DAY, warmup_s=0.0, cooldown_s=0.0)
    # Node 15 is never allocated to the single 4-node job.
    trace = FailureTrace([FailureEvent(1 * HOUR, 15)], horizon=config.horizon_s)
    sim = Simulation(config, jobs=single_job(tiny_classes), failure_trace=trace)
    result = sim.run()
    assert result.failures_total == 1
    assert result.failures_effective == 0
    assert result.jobs_failed == 0
    assert result.jobs_completed == 1


def test_failure_before_first_checkpoint_restarts_from_scratch(tiny_config, tiny_classes):
    config = tiny_config("ordered-fixed", horizon_s=1 * DAY, warmup_s=0.0, cooldown_s=0.0)
    trace = FailureTrace([FailureEvent(0.5 * HOUR, 1)], horizon=config.horizon_s)
    sim = Simulation(config, jobs=single_job(tiny_classes), failure_trace=trace)
    result = sim.run()
    original = sim.jobs[0]
    assert original.work_protected_s == 0.0
    assert result.restarts_submitted == 1
    # No checkpoint existed, so the restart re-reads the original input size
    # and re-does all the work; it still completes within the horizon.
    assert result.jobs_completed == 1


def test_repeated_failures_spawn_repeated_restarts(tiny_config, tiny_classes):
    config = tiny_config("orderednb-daly", horizon_s=2 * DAY, warmup_s=0.0, cooldown_s=0.0)
    trace = FailureTrace(
        [FailureEvent(1.0 * HOUR, 0), FailureEvent(2.5 * HOUR, 2), FailureEvent(4.0 * HOUR, 1)],
        horizon=config.horizon_s,
    )
    sim = Simulation(config, jobs=single_job(tiny_classes, work_s=6 * HOUR), failure_trace=trace)
    result = sim.run()
    assert result.failures_effective >= 1
    assert result.restarts_submitted == result.jobs_failed
    # Work is conserved: eventually one incarnation finishes.
    assert result.jobs_completed == 1


# ------------------------------------------------------------ strategy semantics
def test_blocking_strategy_records_checkpoint_wait_under_contention(tiny_platform, tiny_classes, tiny_config):
    # Many jobs on a slow file system: with Ordered (blocking) some checkpoint
    # requests must wait for the token, which is recorded as CHECKPOINT_WAIT.
    config = tiny_config(
        "ordered-fixed",
        horizon_s=1 * DAY,
        warmup_s=0.0,
        cooldown_s=0.0,
        platform=tiny_platform.with_bandwidth(tiny_platform.io_bandwidth_bytes_per_s / 20),
    )
    jobs = [
        Job(app_class=tiny_classes[0], total_work_s=6 * HOUR, priority=float(i)) for i in range(3)
    ] + [Job(app_class=tiny_classes[1], total_work_s=6 * HOUR, priority=10.0)]
    sim = Simulation(config, jobs=jobs, failure_trace=no_failures(config.horizon_s))
    result = sim.run()
    assert result.breakdown.checkpoint_wait > 0.0


def test_nonblocking_strategy_never_records_checkpoint_wait(tiny_platform, tiny_classes, tiny_config):
    config = tiny_config(
        "orderednb-fixed",
        horizon_s=1 * DAY,
        warmup_s=0.0,
        cooldown_s=0.0,
        platform=tiny_platform.with_bandwidth(tiny_platform.io_bandwidth_bytes_per_s / 20),
    )
    jobs = [
        Job(app_class=tiny_classes[0], total_work_s=6 * HOUR, priority=float(i)) for i in range(3)
    ] + [Job(app_class=tiny_classes[1], total_work_s=6 * HOUR, priority=10.0)]
    sim = Simulation(config, jobs=jobs, failure_trace=no_failures(config.horizon_s))
    result = sim.run()
    assert result.breakdown.checkpoint_wait == 0.0


def test_oblivious_dilation_vs_ordered_service(tiny_config, tiny_classes):
    # Two identical jobs whose checkpoints collide: under Oblivious both are
    # dilated; under Ordered the total checkpoint time is the same but the
    # first one is served at full speed.  Either way, both accumulate
    # checkpoint waste and both finish.
    jobs = [
        Job(app_class=tiny_classes[0], total_work_s=3 * HOUR, priority=0.0),
        Job(app_class=tiny_classes[0], total_work_s=3 * HOUR, priority=1.0),
    ]
    results = {}
    for strategy in ("oblivious-fixed", "ordered-fixed"):
        config = tiny_config(strategy, horizon_s=1 * DAY, warmup_s=0.0, cooldown_s=0.0)
        sim = Simulation(
            config,
            jobs=[Job(app_class=j.app_class, total_work_s=j.total_work_s, priority=j.priority) for j in jobs],
            failure_trace=no_failures(config.horizon_s),
        )
        results[strategy] = sim.run()
    for result in results.values():
        assert result.jobs_completed == 2
        assert result.breakdown.checkpoint > 0.0


# ------------------------------------------------------------ mechanics
def test_run_can_only_be_called_once(tiny_config, tiny_classes):
    config = tiny_config()
    sim = Simulation(config, jobs=single_job(tiny_classes), failure_trace=no_failures(config.horizon_s))
    sim.run()
    with pytest.raises(SimulationError):
        sim.run()


def test_simulation_is_deterministic_for_a_given_seed(tiny_config):
    a = Simulation(tiny_config(seed=5)).run()
    b = Simulation(tiny_config(seed=5)).run()
    assert a.waste_ratio == pytest.approx(b.waste_ratio)
    assert a.jobs_completed == b.jobs_completed
    assert a.failures_total == b.failures_total
    assert a.events_fired == b.events_fired


def test_different_seeds_give_different_initial_conditions(tiny_config):
    a = Simulation(tiny_config(seed=1)).run()
    b = Simulation(tiny_config(seed=2)).run()
    assert (a.failures_total, a.jobs_submitted) != (b.failures_total, b.jobs_submitted) or (
        a.waste_ratio != pytest.approx(b.waste_ratio)
    )


def test_generated_workload_keeps_platform_utilized(tiny_config):
    result = Simulation(tiny_config(seed=3, horizon_s=2 * DAY)).run()
    assert result.node_utilization > 0.85
    assert result.jobs_submitted > 2


def test_run_simulation_convenience_wrapper(tiny_platform, tiny_classes):
    result = run_simulation(
        platform=tiny_platform,
        workload=list(tiny_classes),
        strategy="least-waste",
        horizon_days=1.0,
        warmup_days=0.1,
        cooldown_days=0.1,
        seed=0,
    )
    assert result.strategy == "least-waste"
    assert 0.0 <= result.waste_ratio <= 1.0
    assert result.horizon_s == pytest.approx(1.0 * DAY)


def test_waste_ratio_always_within_bounds(tiny_config):
    for strategy in ("oblivious-fixed", "ordered-daly", "orderednb-fixed", "least-waste"):
        result = Simulation(tiny_config(strategy, seed=9)).run()
        assert 0.0 <= result.waste_ratio <= 1.0
        assert 0.0 <= result.efficiency <= 1.0

"""Per-cell waste drill-down (repro.trace) and its exactness contract.

The acceptance bar of the subsystem: a drill-down reproduces any campaign
cell from its cache key with a decomposition whose components sum
(repr-exact) to the cell's recorded waste ratio, byte-identical across
repeated invocations, and a cached cell re-drills for free from its trace
sidecar.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.app_class import ApplicationClass
from repro.errors import AnalysisError, ConfigurationError
from repro.exec.cache import ResultCache
from repro.exec.digest import config_digest
from repro.exec.runner import ParallelRunner
from repro.platform.spec import PlatformSpec
from repro.scenarios.runner import CampaignRunner
from repro.scenarios.spec import Scenario
from repro.simulation.simulator import Simulation
from repro.stats.montecarlo import derive_seeds
from repro.trace import WasteDecomposition, decomposition_to_csv, drill_down_cell, render_decomposition
from repro.units import DAY, GB, HOUR

_PLATFORM = PlatformSpec(
    name="drill",
    num_nodes=16,
    cores_per_node=4,
    memory_per_node_bytes=8.0 * GB,
    io_bandwidth_bytes_per_s=1.0 * GB,
    node_mtbf_s=20.0 * DAY,
)

_WORKLOAD = (
    ApplicationClass(
        name="alpha",
        nodes=4,
        work_s=2.0 * HOUR,
        input_bytes=2.0 * GB,
        output_bytes=4.0 * GB,
        checkpoint_bytes=8.0 * GB,
        workload_share=0.6,
    ),
    ApplicationClass(
        name="beta",
        nodes=2,
        work_s=1.0 * HOUR,
        input_bytes=1.0 * GB,
        output_bytes=2.0 * GB,
        checkpoint_bytes=3.0 * GB,
        workload_share=0.4,
    ),
)


def _scenario(**overrides) -> Scenario:
    parameters = dict(
        name="drill",
        platform=_PLATFORM,
        workload=_WORKLOAD,
        strategies=("ordered-daly", "least-waste"),
        num_runs=2,
        base_seed=7,
        horizon_days=0.5,
        warmup_days=0.05,
        cooldown_days=0.05,
    )
    parameters.update(overrides)
    return Scenario(**parameters)


def _components_sum(d: WasteDecomposition) -> float:
    # Summed in the same order as WasteBreakdown.waste.
    return d.io_delay + d.checkpoint + d.checkpoint_wait + d.recovery + d.lost_work


# --------------------------------------------------------------- exactness
def test_drill_down_reproduces_the_cached_cell_value(tmp_path):
    scenario = _scenario()
    runner = CampaignRunner(runner=ParallelRunner(cache_dir=tmp_path))
    outcome = runner.run_scenario(scenario)

    for strategy in scenario.strategies:
        for rep in range(scenario.num_runs):
            decomposition = runner.drill_down(scenario, strategy, rep=rep)
            seed = derive_seeds(scenario.base_seed, scenario.num_runs)[rep]
            recorded = runner.runner.cache.probe(
                config_digest(scenario.config(strategy)), strategy, seed
            )
            assert recorded is not None
            # repr-exact: the decomposition's ratio IS the cached float.
            assert repr(decomposition.waste_ratio) == repr(recorded)
            assert _components_sum(decomposition) == decomposition.waste
    # The drilled repetitions stay consistent with the campaign summary.
    assert 0.0 <= outcome.summaries[strategy].mean <= 1.0


def test_decomposition_contains_per_job_rows_with_stable_labels():
    scenario = _scenario(num_runs=1)
    decomposition = CampaignRunner().drill_down(scenario, "least-waste")
    assert decomposition.jobs, "a half-day run must attribute work to jobs"
    names = [job.name for job in decomposition.jobs]
    assert len(set(names)) == len(names)  # labels are unique
    assert all("#" in name for name in names)  # <class>#<ordinal>[+r...]
    # Per-job ledgers add up to the aggregates (up to float reassociation).
    for field in ("compute", "checkpoint", "recovery", "lost_work", "io_delay"):
        total = sum(getattr(job, field) for job in decomposition.jobs)
        assert total == pytest.approx(getattr(decomposition, field), rel=1e-9, abs=1e-6)


def test_drill_down_is_deterministic_byte_identical_csv():
    scenario = _scenario(num_runs=1)
    runner = CampaignRunner()
    first = decomposition_to_csv(runner.drill_down(scenario, "least-waste"))
    second = decomposition_to_csv(runner.drill_down(scenario, "least-waste"))
    assert first == second  # byte-identical despite fresh Job ids
    assert render_decomposition(
        runner.drill_down(scenario, "least-waste")
    ) == render_decomposition(runner.drill_down(scenario, "least-waste"))


# --------------------------------------------------------------- sidecars
def test_second_drill_replays_the_sidecar_without_simulating(tmp_path, monkeypatch):
    scenario = _scenario(num_runs=1)
    runner = CampaignRunner(runner=ParallelRunner(cache_dir=tmp_path))
    first = runner.drill_down(scenario, "least-waste")
    cache = runner.runner.cache
    digest = config_digest(scenario.config("least-waste"))
    assert cache.get_trace(digest, "least-waste", first.seed) is not None
    assert cache.stats().trace_sidecars == 1

    # Any simulation attempt now blows up: the replay must not simulate.
    monkeypatch.setattr(
        "repro.trace.drilldown.Simulation",
        lambda *a, **k: pytest.fail("sidecar replay must not re-simulate"),
    )
    replayed = runner.drill_down(scenario, "least-waste")
    assert replayed == first
    assert decomposition_to_csv(replayed) == decomposition_to_csv(first)


def test_sidecar_version_mismatch_is_a_miss_and_rewrites(tmp_path):
    import json

    scenario = _scenario(num_runs=1)
    cache = ResultCache(tmp_path)
    config = scenario.config("least-waste")
    seed = derive_seeds(scenario.base_seed, 1)[0]
    first = drill_down_cell(config, seed, cache=cache, scenario=scenario.name)

    path = cache.trace_path(config_digest(config), config.strategy, seed)
    stale = json.loads(path.read_text())
    stale["version"] = "0"  # a simulator from another era
    path.write_text(json.dumps(stale))
    assert cache.get_trace(config_digest(config), config.strategy, seed) is None

    again = drill_down_cell(config, seed, cache=cache, scenario=scenario.name)
    assert again == first
    # ... and the sidecar was rewritten under the current version.
    assert cache.get_trace(config_digest(config), config.strategy, seed) is not None


def test_contradicted_scalar_entry_fails_loudly(tmp_path):
    """A scalar entry the simulator can no longer reproduce (a behaviour
    change without a DIGEST_VERSION bump) must raise, not silently coexist
    with fresh values in one campaign table."""
    scenario = _scenario(num_runs=1)
    cache = ResultCache(tmp_path)
    config = scenario.config("least-waste")
    seed = derive_seeds(scenario.base_seed, 1)[0]
    first = drill_down_cell(config, seed, cache=cache, scenario=scenario.name)

    # Corrupt the *scalar* entry: neither the (now disagreeing) sidecar nor
    # a fresh simulation can reproduce it.
    cache.put(config_digest(config), config.strategy, seed, 0.999)
    with pytest.raises(AnalysisError, match="contradicts the cached value"):
        drill_down_cell(config, seed, cache=cache, scenario=scenario.name)

    # Restoring the true value heals the cell (sidecar replays again).
    cache.put(config_digest(config), config.strategy, seed, first.waste_ratio)
    assert drill_down_cell(config, seed, cache=cache, scenario=scenario.name) == first


def test_malformed_sidecar_payload_is_a_miss_and_resimulates(tmp_path):
    import json

    scenario = _scenario(num_runs=1)
    cache = ResultCache(tmp_path)
    config = scenario.config("least-waste")
    seed = derive_seeds(scenario.base_seed, 1)[0]
    first = drill_down_cell(config, seed, cache=cache, scenario=scenario.name)

    path = cache.trace_path(config_digest(config), config.strategy, seed)
    payload = json.loads(path.read_text())
    del payload["categories"]
    path.write_text(json.dumps(payload))
    assert drill_down_cell(config, seed, cache=cache, scenario=scenario.name) == first


def test_sidecar_replay_takes_the_callers_scenario_label(tmp_path):
    """The cell is content-addressed: a sidecar written under one campaign's
    scenario name must not leak that name into another campaign's report."""
    scenario = _scenario(num_runs=1)
    cache = ResultCache(tmp_path)
    config = scenario.config("least-waste")
    seed = derive_seeds(scenario.base_seed, 1)[0]
    drill_down_cell(config, seed, cache=cache, scenario="campaign-a-name")
    replayed = drill_down_cell(config, seed, cache=cache, scenario="campaign-b-name")
    assert replayed.scenario == "campaign-b-name"
    assert "campaign-b-name" in decomposition_to_csv(replayed)


def test_gc_prunes_trace_sidecars_with_their_entries(tmp_path):
    scenario = _scenario(num_runs=1)
    cache = ResultCache(tmp_path)
    config = scenario.config("least-waste")
    seed = derive_seeds(scenario.base_seed, 1)[0]
    drill_down_cell(config, seed, cache=cache, scenario=scenario.name)
    assert cache.stats().trace_sidecars == 1

    from repro.exec.digest import DIGEST_VERSION

    # The dry-run estimate already includes the sidecar's bytes, so it
    # matches what the real pass then reclaims.
    before = cache.stats()
    estimate = cache.gc(digest_version=DIGEST_VERSION, dry_run=True)
    report = cache.gc(digest_version=DIGEST_VERSION)
    assert report.removed == 1
    assert report.reclaimed_bytes == estimate.reclaimed_bytes
    assert report.reclaimed_bytes == before.total_bytes + before.trace_bytes
    assert cache.stats().trace_sidecars == 0
    assert not cache.trace_path(config_digest(config), config.strategy, seed).exists()


# --------------------------------------------------------------- payloads
def test_payload_round_trip_is_exact():
    scenario = _scenario(num_runs=1)
    decomposition = CampaignRunner().drill_down(scenario, "ordered-daly")
    assert WasteDecomposition.from_payload(decomposition.to_payload()) == decomposition


def test_malformed_payload_raises_analysis_error():
    with pytest.raises(AnalysisError):
        WasteDecomposition.from_payload({"strategy": "least-waste"})


# --------------------------------------------------------------- addressing
def test_drill_down_validates_the_cell_address():
    scenario = _scenario()
    runner = CampaignRunner()
    with pytest.raises(ConfigurationError, match="out of range"):
        runner.drill_down(scenario, "least-waste", rep=scenario.num_runs)
    with pytest.raises(ConfigurationError, match="does not evaluate"):
        runner.drill_down(scenario, "oblivious-daly")
    with pytest.raises(ConfigurationError, match="base_seed=None"):
        runner.drill_down(_scenario(base_seed=None), "least-waste")


def test_from_simulation_requires_a_trace_enabled_run(tiny_config):
    sim = Simulation(tiny_config())
    result = sim.run()
    with pytest.raises(AnalysisError, match="collect_trace"):
        WasteDecomposition.from_simulation(sim, result, digest="0" * 64)


# --------------------------------------------------------------- hypothesis
_random_cells = st.builds(
    lambda bandwidth, mtbf_days, horizon_h, strategy, seed: (
        _scenario(
            platform=_PLATFORM.with_bandwidth(bandwidth * GB).with_node_mtbf(
                mtbf_days * DAY
            ),
            strategies=(strategy,),
            num_runs=1,
            base_seed=seed,
            horizon_days=horizon_h / 24.0,
            warmup_days=horizon_h / 240.0,
            cooldown_days=horizon_h / 240.0,
        ),
        strategy,
    ),
    bandwidth=st.floats(min_value=0.1, max_value=4.0),
    mtbf_days=st.floats(min_value=2.0, max_value=60.0),
    horizon_h=st.floats(min_value=6.0, max_value=18.0),
    strategy=st.sampled_from(
        ["oblivious-fixed", "ordered-daly", "orderednb-fixed", "least-waste"]
    ),
    seed=st.integers(min_value=0, max_value=2**31),
)


@settings(max_examples=8, deadline=None)
@given(cell=_random_cells)
def test_decomposition_invariant_over_random_scenarios(cell):
    """For ANY cell: components sum repr-exactly to the recorded waste ratio."""
    scenario, strategy = cell
    config = scenario.config(strategy)
    seed = derive_seeds(scenario.base_seed, 1)[0]
    recorded = Simulation(config.with_seed(seed)).run().waste_ratio
    decomposition = drill_down_cell(config, seed, scenario=scenario.name)
    assert _components_sum(decomposition) == decomposition.waste
    assert repr(decomposition.waste_ratio) == repr(recorded)
    assert 0.0 <= decomposition.waste_ratio <= 1.0
    assert decomposition.efficiency == 1.0 - decomposition.waste_ratio


def test_drill_down_matches_cells_recorded_by_the_process_backend(tmp_path):
    """The cells a process-pool campaign cached drill to the same bits."""
    scenario = _scenario(num_runs=1)
    with CampaignRunner(
        runner=ParallelRunner(backend="process", workers=2, cache_dir=tmp_path)
    ) as runner:
        runner.run_scenario(scenario)
        decomposition = runner.drill_down(scenario, "least-waste")
    seed = derive_seeds(scenario.base_seed, 1)[0]
    recorded = runner.runner.cache.probe(
        config_digest(scenario.config("least-waste")), "least-waste", seed
    )
    assert recorded is not None
    assert repr(decomposition.waste_ratio) == repr(recorded)


def test_sidecar_replay_repairs_a_lost_scalar_entry(tmp_path):
    """A valid sidecar restores a deleted/corrupt scalar entry on replay, so
    the next campaign run serves the cell as a hit again."""
    scenario = _scenario(num_runs=1)
    cache = ResultCache(tmp_path)
    config = scenario.config("least-waste")
    seed = derive_seeds(scenario.base_seed, 1)[0]
    first = drill_down_cell(config, seed, cache=cache, scenario=scenario.name)

    digest = config_digest(config)
    entry = cache._entry_path(digest, config.strategy, seed)
    entry.write_text("{broken")  # torn write: probe() treats it as a miss
    assert cache.probe(digest, config.strategy, seed) is None
    replayed = drill_down_cell(config, seed, cache=cache, scenario=scenario.name)
    assert replayed == first
    assert cache.probe(digest, config.strategy, seed) == first.waste_ratio


def test_gc_unlinks_even_empty_trace_sidecars(tmp_path):
    scenario = _scenario(num_runs=1)
    cache = ResultCache(tmp_path)
    config = scenario.config("least-waste")
    seed = derive_seeds(scenario.base_seed, 1)[0]
    drill_down_cell(config, seed, cache=cache, scenario=scenario.name)

    # External truncation (disk full, interrupted copy): 0 bytes, not absent.
    cache.trace_path(config_digest(config), config.strategy, seed).write_text("")
    from repro.exec.digest import DIGEST_VERSION

    cache.gc(digest_version=DIGEST_VERSION)
    assert cache.stats().trace_sidecars == 0  # no orphan left behind


def test_detailed_drill_reports_cache_provenance(tmp_path):
    """recorded_value distinguishes a genuine comparison from a cold drill
    that wrote the entry itself (the CLI's match claim rests on this)."""
    from repro.trace import drill_down_cell_detailed

    scenario = _scenario(num_runs=1)
    cache = ResultCache(tmp_path)
    config = scenario.config("least-waste")
    seed = derive_seeds(scenario.base_seed, 1)[0]

    cold = drill_down_cell_detailed(config, seed, cache=cache, scenario=scenario.name)
    assert cold.recorded_value is None  # nothing pre-existed to compare
    warm = drill_down_cell_detailed(config, seed, cache=cache, scenario=scenario.name)
    assert warm.recorded_value == cold.decomposition.waste_ratio
    assert warm.decomposition == cold.decomposition

    runner = CampaignRunner(runner=ParallelRunner(cache=cache))
    via_runner = runner.drill_down_detailed(scenario, "least-waste")
    assert via_runner.recorded_value == cold.decomposition.waste_ratio


def test_gc_sweeps_orphaned_sidecars(tmp_path):
    """A sidecar whose scalar entry vanished (race, external delete) is
    reclaimed by any criteria-bearing gc pass instead of living forever."""
    scenario = _scenario(num_runs=1)
    cache = ResultCache(tmp_path)
    config = scenario.config("least-waste")
    seed = derive_seeds(scenario.base_seed, 1)[0]
    drill_down_cell(config, seed, cache=cache, scenario=scenario.name)

    cache._entry_path(config_digest(config), config.strategy, seed).unlink()
    assert cache.stats().trace_sidecars == 1  # orphaned
    report = cache.gc(older_than_s=10 * 365 * 86400.0)  # matches no entry
    assert report.removed == 1 and report.reclaimed_bytes > 0
    assert cache.stats().trace_sidecars == 0

"""The ``campaign`` CLI subcommand."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


def test_parser_knows_the_campaign_subcommand():
    args = build_parser().parse_args(["campaign"])
    assert args.command == "campaign"
    assert args.preset is None  # resolved to "smoke" at run time
    assert args.backend is None  # resolved from --workers at run time
    args = build_parser().parse_args(
        ["campaign", "--preset", "prospective-resilience", "--workers", "3"]
    )
    assert args.preset == "prospective-resilience"
    assert args.workers == 3
    with pytest.raises(SystemExit):  # --preset and --file are exclusive
        build_parser().parse_args(["campaign", "--preset", "smoke", "--file", "x.toml"])


def test_campaign_rejects_unknown_preset(capsys):
    with pytest.raises(SystemExit):
        main(["campaign", "--preset", "bogus"])


def test_campaign_smoke_prints_the_comparison_table(capsys):
    assert main(["campaign", "--preset", "smoke", "--num-runs", "1"]) == 0
    out = capsys.readouterr().out
    assert "Campaign smoke" in out
    assert "io=1,mtbf=short" in out and "io=4,mtbf=long" in out
    assert "least-waste" in out
    assert "*" in out  # a winner is marked on every row


def test_campaign_details_and_best_summary(capsys):
    assert (
        main(
            [
                "campaign",
                "--preset", "smoke",
                "--num-runs", "1",
                "--horizon-days", "0.25",
                "--strategies", "least-waste",
                "--details",
                "--best-summary",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "MiniCielo" in out  # details include scenario descriptions
    assert "breakdown (node-hours in window):" in out  # full first-seed summary


def test_campaign_csv_export(tmp_path, capsys):
    csv_path = tmp_path / "campaign.csv"
    assert (
        main(
            [
                "campaign",
                "--preset", "smoke",
                "--num-runs", "1",
                "--strategies", "least-waste",
                "--csv", str(csv_path),
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert f"wrote {csv_path}" in out
    header = csv_path.read_text().splitlines()[0]
    assert header.startswith("campaign,scenario,strategy,spec,best,")


def test_campaign_cache_reruns_without_simulating(tmp_path, capsys):
    cache = tmp_path / "cache"
    argv = [
        "campaign",
        "--preset", "smoke",
        "--num-runs", "1",
        "--strategies", "least-waste",
        "--cache-dir", str(cache),
    ]
    assert main(argv) == 0
    first = capsys.readouterr().out
    assert "cache: 0 hit(s), 4 simulation(s)" in first

    assert main(argv) == 0
    second = capsys.readouterr().out
    assert "cache: 4 hit(s), 0 simulation(s)" in second
    # The rendered table is identical either way.
    assert first.split("cache:")[0] == second.split("cache:")[0]


def test_campaign_workers_flag_matches_serial_output(capsys):
    argv = ["campaign", "--preset", "smoke", "--num-runs", "2", "--strategies", "least-waste"]
    assert main(argv) == 0
    serial = capsys.readouterr().out
    assert main(argv + ["--workers", "2"]) == 0
    parallel = capsys.readouterr().out
    assert serial == parallel


def test_campaign_validates_num_runs():
    # Misconfiguration follows the documented contract: exit 2, not 1.
    assert main(["campaign", "--preset", "smoke", "--num-runs", "0"]) == 2


# --------------------------------------------------------- trace drill-down
def test_trace_drills_a_campaign_cell_and_matches_the_cache(tmp_path, capsys):
    """The CI contract: run a campaign, drill one cell, decomposition
    components sum to the cell's cached waste value."""
    cache_dir = str(tmp_path / "cache")
    assert main(["campaign", "--preset", "smoke", "--cache-dir", cache_dir]) == 0
    capsys.readouterr()
    csv_path = tmp_path / "cell.csv"
    assert (
        main(
            [
                "trace",
                "--campaign", "smoke",
                "--scenario", "io=1,mtbf=short",
                "--strategy", "least-waste",
                "--seed", "0",
                "--cache-dir", cache_dir,
                "--csv", str(csv_path),
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "matches the cached cell value" in out
    assert "waste components" in out
    first = csv_path.read_text()
    assert first.startswith("scenario,strategy,seed,scope,job,")

    # Re-drilling replays the sidecar and stays byte-identical.
    assert (
        main(
            [
                "trace",
                "--campaign", "smoke",
                "--scenario", "io=1,mtbf=short",
                "--strategy", "least-waste",
                "--cache-dir", cache_dir,
                "--csv", str(csv_path),
            ]
        )
        == 0
    )
    capsys.readouterr()
    assert csv_path.read_text() == first


def test_trace_on_a_cold_cache_does_not_claim_a_vacuous_match(tmp_path, capsys):
    """Without a prior campaign run there is no recorded value to verify
    against; the drill must say so, not self-confirm the entry it wrote."""
    cache_dir = str(tmp_path / "fresh")
    argv = [
        "trace",
        "--campaign", "smoke",
        "--scenario", "io=1,mtbf=short",
        "--strategy", "least-waste",
        "--cache-dir", cache_dir,
    ]
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert "matches the cached cell value" not in out
    assert "was not in the cache before" in out
    # The drill warmed the cache, so a second run really does compare.
    assert main(argv) == 0
    assert "matches the cached cell value" in capsys.readouterr().out


def test_trace_cell_defaults_and_works_without_a_cache(capsys):
    """--scenario picks the cell; strategy defaults to the scenario's first."""
    assert main(["trace", "--campaign", "smoke", "--scenario", "io=4,mtbf=long"]) == 0
    out = capsys.readouterr().out
    assert "Cell io=4,mtbf=long / ordered-daly" in out
    assert "waste ratio" in out


def test_trace_cell_addressing_errors_exit_2(tmp_path, capsys):
    # Unknown campaign (neither preset nor file).
    assert main(["trace", "--campaign", "bogus"]) == 2
    # Ambiguous scenario: smoke expands to four.
    assert main(["trace", "--campaign", "smoke"]) == 2
    # Unknown scenario name.
    assert main(["trace", "--campaign", "smoke", "--scenario", "nope"]) == 2
    # Repetition out of range (smoke runs 2 repetitions).
    assert (
        main(["trace", "--campaign", "smoke", "--scenario", "io=1,mtbf=short", "--seed", "9"])
        == 2
    )
    # --csv without --campaign has nothing to export.
    assert main(["trace", "--csv", str(tmp_path / "x.csv")]) == 2
    # Mode mix-ups are loud, never silently ignored: timeline knobs don't
    # apply to a campaign cell, and cell addressing needs a campaign.
    assert main(["trace", "--campaign", "smoke", "--scenario", "io=1,mtbf=short",
                 "--horizon-days", "5"]) == 2
    assert main(["trace", "--scenario", "io=1,mtbf=short"]) == 2
    err = capsys.readouterr().err
    assert "pick one with --scenario" in err
    assert "--horizon-days only applies to the timeline mode" in err

"""The ``campaign`` CLI subcommand."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


def test_parser_knows_the_campaign_subcommand():
    args = build_parser().parse_args(["campaign"])
    assert args.command == "campaign"
    assert args.preset is None  # resolved to "smoke" at run time
    assert args.backend is None  # resolved from --workers at run time
    args = build_parser().parse_args(
        ["campaign", "--preset", "prospective-resilience", "--workers", "3"]
    )
    assert args.preset == "prospective-resilience"
    assert args.workers == 3
    with pytest.raises(SystemExit):  # --preset and --file are exclusive
        build_parser().parse_args(["campaign", "--preset", "smoke", "--file", "x.toml"])


def test_campaign_rejects_unknown_preset(capsys):
    with pytest.raises(SystemExit):
        main(["campaign", "--preset", "bogus"])


def test_campaign_smoke_prints_the_comparison_table(capsys):
    assert main(["campaign", "--preset", "smoke", "--num-runs", "1"]) == 0
    out = capsys.readouterr().out
    assert "Campaign smoke" in out
    assert "io=1,mtbf=short" in out and "io=4,mtbf=long" in out
    assert "least-waste" in out
    assert "*" in out  # a winner is marked on every row


def test_campaign_details_and_best_summary(capsys):
    assert (
        main(
            [
                "campaign",
                "--preset", "smoke",
                "--num-runs", "1",
                "--horizon-days", "0.25",
                "--strategies", "least-waste",
                "--details",
                "--best-summary",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "MiniCielo" in out  # details include scenario descriptions
    assert "breakdown (node-hours in window):" in out  # full first-seed summary


def test_campaign_csv_export(tmp_path, capsys):
    csv_path = tmp_path / "campaign.csv"
    assert (
        main(
            [
                "campaign",
                "--preset", "smoke",
                "--num-runs", "1",
                "--strategies", "least-waste",
                "--csv", str(csv_path),
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert f"wrote {csv_path}" in out
    header = csv_path.read_text().splitlines()[0]
    assert header.startswith("campaign,scenario,strategy,spec,best,")


def test_campaign_cache_reruns_without_simulating(tmp_path, capsys):
    cache = tmp_path / "cache"
    argv = [
        "campaign",
        "--preset", "smoke",
        "--num-runs", "1",
        "--strategies", "least-waste",
        "--cache-dir", str(cache),
    ]
    assert main(argv) == 0
    first = capsys.readouterr().out
    assert "cache: 0 hit(s), 4 simulation(s)" in first

    assert main(argv) == 0
    second = capsys.readouterr().out
    assert "cache: 4 hit(s), 0 simulation(s)" in second
    # The rendered table is identical either way.
    assert first.split("cache:")[0] == second.split("cache:")[0]


def test_campaign_workers_flag_matches_serial_output(capsys):
    argv = ["campaign", "--preset", "smoke", "--num-runs", "2", "--strategies", "least-waste"]
    assert main(argv) == 0
    serial = capsys.readouterr().out
    assert main(argv + ["--workers", "2"]) == 0
    parallel = capsys.readouterr().out
    assert serial == parallel


def test_campaign_validates_num_runs():
    # Misconfiguration follows the documented contract: exit 2, not 1.
    assert main(["campaign", "--preset", "smoke", "--num-runs", "0"]) == 2

"""Ablation studies (repro.experiments.ablation)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.experiments.ablation import (
    fixed_period_ablation,
    interference_model_ablation,
    render_ablation,
)
from repro.units import HOUR


def test_fixed_period_ablation_runs_each_period(tiny_platform, tiny_classes):
    cells = fixed_period_ablation(
        tiny_platform,
        tiny_classes,
        strategy="ordered-fixed",
        periods_hours=(0.5, 2.0),
        horizon_days=0.5,
        num_runs=1,
        base_seed=0,
    )
    assert len(cells) == 2
    assert "0.5 h" in cells[0].label and "2 h" in cells[1].label
    for cell in cells:
        assert 0.0 <= cell.waste.mean <= 1.0
    text = render_ablation("fixed period ablation", cells)
    assert "fixed period ablation" in text
    assert "ordered-fixed" in text


def test_fixed_period_ablation_validation(tiny_platform, tiny_classes):
    with pytest.raises(ConfigurationError):
        fixed_period_ablation(tiny_platform, tiny_classes, periods_hours=())
    with pytest.raises(ConfigurationError):
        fixed_period_ablation(tiny_platform, tiny_classes, strategy="least-waste")


def test_interference_ablation_is_monotone_in_alpha(tiny_platform, tiny_classes):
    cells = interference_model_ablation(
        tiny_platform,
        tiny_classes,
        strategy="oblivious-fixed",
        alphas=(0.0, 1.0),
        horizon_days=0.5,
        num_runs=1,
        base_seed=1,
    )
    assert len(cells) == 2
    assert "linear" in cells[0].label
    assert "alpha=1" in cells[1].label
    # More adversarial interference can only increase (or keep) the waste of
    # an overlapping-I/O strategy.
    assert cells[1].waste.mean >= cells[0].waste.mean - 1e-9


def test_interference_ablation_validation(tiny_platform, tiny_classes):
    with pytest.raises(ConfigurationError):
        interference_model_ablation(tiny_platform, tiny_classes, alphas=())


def test_ablation_cells_under_custom_fixed_period(tiny_platform, tiny_classes):
    # A very long fixed period means fewer checkpoints than a short one, so
    # on a failure-light toy platform the checkpoint overhead shrinks.
    cells = fixed_period_ablation(
        tiny_platform,
        tiny_classes,
        strategy="ordered-fixed",
        periods_hours=(0.25, 4.0),
        horizon_days=0.5,
        num_runs=1,
        base_seed=2,
    )
    frequent, rare = cells
    assert rare.waste.mean <= frequent.waste.mean + 0.02

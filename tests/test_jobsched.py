"""Job queue and first-fit placement (repro.jobsched)."""

from __future__ import annotations

import pytest

from repro.apps.job import Job
from repro.errors import SchedulingError
from repro.jobsched.first_fit import FirstFitScheduler
from repro.jobsched.queue import JobQueue
from repro.platform.nodes import NodePool
from repro.units import HOUR


def make_job(tiny_classes, index=0, **kwargs) -> Job:
    return Job(app_class=tiny_classes[index], total_work_s=HOUR, **kwargs)


# --------------------------------------------------------------------- queue
def test_queue_orders_by_priority_then_submit_time(tiny_classes):
    queue = JobQueue()
    late = make_job(tiny_classes, priority=0.0, submit_time=10.0)
    early = make_job(tiny_classes, priority=0.0, submit_time=5.0)
    urgent = make_job(tiny_classes, priority=-1.0, submit_time=20.0)
    for job in (late, early, urgent):
        queue.push(job)
    assert queue.ordered() == [urgent, early, late]
    assert queue.peek() is urgent
    assert list(queue) == [urgent, early, late]
    assert len(queue) == 3
    assert early in queue


def test_queue_push_remove_and_errors(tiny_classes):
    queue = JobQueue()
    job = make_job(tiny_classes)
    queue.push(job)
    with pytest.raises(SchedulingError):
        queue.push(job)
    queue.remove(job)
    assert len(queue) == 0
    with pytest.raises(SchedulingError):
        queue.remove(job)
    assert queue.peek() is None
    queue.push(job)
    queue.clear()
    assert not queue


# ----------------------------------------------------------------- first fit
def test_first_fit_starts_jobs_in_priority_order(tiny_classes):
    pool = NodePool(8)
    scheduler = FirstFitScheduler(pool)
    a = make_job(tiny_classes, 0, priority=1.0)  # 4 nodes
    b = make_job(tiny_classes, 1, priority=0.0)  # 2 nodes
    scheduler.submit(a)
    scheduler.submit(b)
    started: list[Job] = []
    scheduler.dispatch(lambda job, nodes: started.append(job))
    assert started == [b, a]
    assert pool.num_free == 2
    assert a.allocated_nodes and b.allocated_nodes
    assert scheduler.pending_count() == 0


def test_first_fit_skips_jobs_that_do_not_fit_but_fills_with_smaller_ones(tiny_classes):
    pool = NodePool(5)
    scheduler = FirstFitScheduler(pool)
    big = make_job(tiny_classes, 0, priority=0.0)  # 4 nodes
    big2 = make_job(tiny_classes, 0, priority=1.0)  # 4 nodes, will not fit
    small = make_job(tiny_classes, 1, priority=2.0)  # 2 nodes, fits after big... no: 5-4=1
    scheduler.submit(big)
    scheduler.submit(big2)
    scheduler.submit(small)
    started: list[Job] = []
    scheduler.dispatch(lambda job, nodes: started.append(job))
    # big starts (4 nodes), one node left: neither big2 nor small fits.
    assert started == [big]
    assert scheduler.pending_count() == 2


def test_startable_jobs_matches_dispatch_plan(tiny_classes):
    pool = NodePool(6)
    scheduler = FirstFitScheduler(pool)
    jobs = [make_job(tiny_classes, 0, priority=0.0), make_job(tiny_classes, 1, priority=1.0)]
    for job in jobs:
        scheduler.submit(job)
    plan = scheduler.startable_jobs()
    started: list[Job] = []
    scheduler.dispatch(lambda job, nodes: started.append(job))
    assert plan == started == jobs


def test_dispatch_after_release_starts_waiting_jobs(tiny_classes):
    pool = NodePool(4)
    scheduler = FirstFitScheduler(pool)
    first = make_job(tiny_classes, 0, priority=0.0)
    second = make_job(tiny_classes, 0, priority=1.0)
    scheduler.submit(first)
    scheduler.submit(second)
    scheduler.dispatch(lambda job, nodes: None)
    assert scheduler.pending_count() == 1
    pool.release_owner(first)
    started: list[Job] = []
    scheduler.dispatch(lambda job, nodes: started.append(job))
    assert started == [second]


def test_callback_runs_after_allocation_is_recorded(tiny_classes):
    pool = NodePool(8)
    scheduler = FirstFitScheduler(pool)
    job = make_job(tiny_classes, 0)
    scheduler.submit(job)

    def check(started_job: Job, nodes: list[int]) -> None:
        assert pool.owner_of(nodes[0]) is started_job
        assert started_job.allocated_nodes == nodes

    scheduler.dispatch(check)
    assert scheduler.queue.peek() is None
    assert scheduler.pool is pool

"""Event queue (repro.sim.events)."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim.events import EventQueue


def test_events_pop_in_time_order():
    queue = EventQueue()
    fired: list[str] = []
    queue.push(3.0, fired.append, "c")
    queue.push(1.0, fired.append, "a")
    queue.push(2.0, fired.append, "b")
    while queue:
        event = queue.pop_next()
        event.callback(*event.args)
    assert fired == ["a", "b", "c"]


def test_same_time_events_fire_in_scheduling_order():
    queue = EventQueue()
    order: list[int] = []
    for index in range(10):
        queue.push(5.0, order.append, index)
    while queue:
        event = queue.pop_next()
        event.callback(*event.args)
    assert order == list(range(10))


def test_len_counts_only_active_events():
    queue = EventQueue()
    first = queue.push(1.0, lambda: None)
    queue.push(2.0, lambda: None)
    assert len(queue) == 2
    queue.cancel(first)
    assert len(queue) == 1
    # Cancelling twice is a no-op.
    queue.cancel(first)
    assert len(queue) == 1


def test_cancelled_events_are_skipped():
    queue = EventQueue()
    fired: list[str] = []
    keep = queue.push(1.0, fired.append, "keep")
    drop = queue.push(0.5, fired.append, "drop")
    queue.cancel(drop)
    event = queue.pop_next()
    assert event is keep
    assert queue.pop_next() is None


def test_peek_time_skips_cancelled_events():
    queue = EventQueue()
    early = queue.push(1.0, lambda: None)
    queue.push(2.0, lambda: None)
    assert queue.peek_time() == 1.0
    queue.cancel(early)
    assert queue.peek_time() == 2.0


def test_peek_time_empty_queue():
    assert EventQueue().peek_time() is None


def test_clear_drops_everything():
    queue = EventQueue()
    queue.push(1.0, lambda: None)
    queue.push(2.0, lambda: None)
    queue.clear()
    assert len(queue) == 0
    assert queue.pop_next() is None


def test_nan_time_rejected():
    with pytest.raises(SimulationError):
        EventQueue().push(float("nan"), lambda: None)


def test_event_active_flag():
    queue = EventQueue()
    event = queue.push(1.0, lambda: None)
    assert event.active
    queue.cancel(event)
    assert not event.active

"""Event queue (repro.sim.events)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.sim.events import EventQueue


def test_events_pop_in_time_order():
    queue = EventQueue()
    fired: list[str] = []
    queue.push(3.0, fired.append, "c")
    queue.push(1.0, fired.append, "a")
    queue.push(2.0, fired.append, "b")
    while queue:
        event = queue.pop_next()
        event.callback(*event.args)
    assert fired == ["a", "b", "c"]


def test_same_time_events_fire_in_scheduling_order():
    queue = EventQueue()
    order: list[int] = []
    for index in range(10):
        queue.push(5.0, order.append, index)
    while queue:
        event = queue.pop_next()
        event.callback(*event.args)
    assert order == list(range(10))


def test_len_counts_only_active_events():
    queue = EventQueue()
    first = queue.push(1.0, lambda: None)
    queue.push(2.0, lambda: None)
    assert len(queue) == 2
    queue.cancel(first)
    assert len(queue) == 1
    # Cancelling twice is a no-op.
    queue.cancel(first)
    assert len(queue) == 1


def test_cancelled_events_are_skipped():
    queue = EventQueue()
    fired: list[str] = []
    keep = queue.push(1.0, fired.append, "keep")
    drop = queue.push(0.5, fired.append, "drop")
    queue.cancel(drop)
    event = queue.pop_next()
    assert event is keep
    assert queue.pop_next() is None


def test_peek_time_skips_cancelled_events():
    queue = EventQueue()
    early = queue.push(1.0, lambda: None)
    queue.push(2.0, lambda: None)
    assert queue.peek_time() == 1.0
    queue.cancel(early)
    assert queue.peek_time() == 2.0


def test_peek_time_empty_queue():
    assert EventQueue().peek_time() is None


def test_clear_drops_everything():
    queue = EventQueue()
    queue.push(1.0, lambda: None)
    queue.push(2.0, lambda: None)
    queue.clear()
    assert len(queue) == 0
    assert queue.pop_next() is None


def test_nan_time_rejected():
    with pytest.raises(SimulationError):
        EventQueue().push(float("nan"), lambda: None)


def test_event_active_flag():
    queue = EventQueue()
    event = queue.push(1.0, lambda: None)
    assert event.active
    queue.cancel(event)
    assert not event.active


def test_cancel_after_fire_is_a_noop_regression():
    # Regression: cancelling an event that already fired used to decrement
    # the active count below zero, corrupting ``len(queue)`` and
    # ``pending_events`` for every later scheduling decision.
    queue = EventQueue()
    first = queue.push(1.0, lambda: None)
    queue.push(2.0, lambda: None)
    fired = queue.pop_next()
    assert fired is first and fired.fired
    assert len(queue) == 1
    queue.cancel(fired)  # must be a no-op
    assert len(queue) == 1
    assert queue.pop_next() is not None
    assert len(queue) == 0
    queue.cancel(fired)  # still a no-op on an empty queue
    assert len(queue) == 0


def test_pop_next_until_respects_the_bound():
    queue = EventQueue()
    queue.push(1.0, lambda: None)
    late = queue.push(5.0, lambda: None)
    assert queue.pop_next_until(2.0).time == 1.0
    # The bound leaves later events untouched on the heap.
    assert queue.pop_next_until(2.0) is None
    assert queue.pop_next_until(2.0) is None
    assert queue.pop_next_until(5.0) is late


def test_heap_compaction_drops_cancelled_entries():
    queue = EventQueue()
    events = [queue.push(float(i), lambda: None) for i in range(200)]
    for event in events[:-1]:
        queue.cancel(event)
    # Lazily-cancelled entries dominated, so the heap was compacted down to
    # the single live event instead of carrying 199 tombstones.
    assert len(queue) == 1
    assert len(queue._heap) < 200
    assert queue.pop_next() is events[-1]


@given(
    ops=st.lists(
        st.one_of(
            st.tuples(st.just("push"), st.floats(0.0, 100.0, allow_nan=False)),
            st.tuples(st.just("pop")),
            st.tuples(st.just("cancel"), st.integers(min_value=0)),
        ),
        max_size=300,
    )
)
@settings(max_examples=200, deadline=None)
def test_active_count_matches_live_heap_entries(ops):
    """Invariant: ``_active`` == number of uncancelled events on the heap."""
    queue = EventQueue()
    seen = []  # every event ever created (fired, cancelled or pending)
    for op in ops:
        if op[0] == "push":
            seen.append(queue.push(op[1], lambda: None))
        elif op[0] == "pop":
            event = queue.pop_next()
            if event is not None:
                assert not event.cancelled
                assert event.fired
        elif op[0] == "cancel" and seen:
            queue.cancel(seen[op[1] % len(seen)])
        live = [entry[2] for entry in queue._heap if not entry[2].cancelled]
        assert queue._active == len(live) == len(queue)
        assert all(not event.fired for event in live)

"""Interference models (repro.platform.interference) and their effect on the PFS."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.platform.interference import (
    CappedConcurrencyInterference,
    DegradingInterference,
    LinearInterference,
)
from repro.platform.io_subsystem import IOSubsystem
from repro.sim.engine import SimulationEngine


def test_linear_model_conserves_throughput():
    model = LinearInterference()
    for streams in (0, 1, 2, 10, 100):
        assert model.effective_bandwidth(100.0, streams) == 100.0
    assert model.name == "linear"


def test_degrading_model_reduces_throughput_with_concurrency():
    model = DegradingInterference(alpha=0.5)
    assert model.effective_bandwidth(100.0, 1) == 100.0
    assert model.effective_bandwidth(100.0, 2) == pytest.approx(100.0 / 1.5)
    assert model.effective_bandwidth(100.0, 3) == pytest.approx(100.0 / 2.0)
    # alpha = 0 degenerates to the linear model.
    assert DegradingInterference(alpha=0.0).effective_bandwidth(100.0, 7) == 100.0
    with pytest.raises(ConfigurationError):
        DegradingInterference(alpha=-0.1)


def test_capped_model_only_degrades_beyond_the_cap():
    model = CappedConcurrencyInterference(max_streams=2)
    assert model.effective_bandwidth(100.0, 1) == 100.0
    assert model.effective_bandwidth(100.0, 2) == 100.0
    assert model.effective_bandwidth(100.0, 4) == pytest.approx(50.0)
    with pytest.raises(ConfigurationError):
        CappedConcurrencyInterference(max_streams=0)


def test_io_subsystem_defaults_to_linear_model():
    engine = SimulationEngine()
    io = IOSubsystem(engine, bandwidth_bytes_per_s=100.0)
    assert isinstance(io.interference_model, LinearInterference)


def test_degrading_model_slows_overlapping_transfers():
    """Two overlapping transfers under a degrading model take longer than
    under the linear model, while a single transfer is unaffected."""

    def run(model, n_transfers):
        engine = SimulationEngine()
        io = IOSubsystem(engine, bandwidth_bytes_per_s=100.0, interference=model)
        finished = []
        for _ in range(n_transfers):
            io.start(500.0, weight=1.0, on_complete=lambda t: finished.append(engine.now))
        engine.run()
        return max(finished)

    linear = LinearInterference()
    harsh = DegradingInterference(alpha=1.0)
    assert run(linear, 1) == pytest.approx(run(harsh, 1))
    assert run(harsh, 2) > run(linear, 2)
    # With alpha=1 and two streams, aggregate throughput is halved: the two
    # 500 B transfers take 20 s instead of 10 s.
    assert run(harsh, 2) == pytest.approx(20.0)
    assert run(linear, 2) == pytest.approx(10.0)


def test_degrading_model_increases_oblivious_waste(tiny_config):
    """End-to-end: an adversarial model can only make Oblivious worse."""
    from repro.simulation.simulator import Simulation

    base = Simulation(tiny_config("oblivious-fixed", seed=11)).run()
    harsh = Simulation(
        tiny_config("oblivious-fixed", seed=11, interference=DegradingInterference(alpha=1.0))
    ).run()
    assert harsh.waste_ratio >= base.waste_ratio - 1e-9

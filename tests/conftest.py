"""Shared fixtures: a tiny platform and workload that simulate in milliseconds."""

from __future__ import annotations

import contextlib
import sys
import threading
from pathlib import Path

import pytest

# Allow running the tests from a source checkout even when the package has
# not been installed (e.g. `pytest` straight after cloning).
_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:  # pragma: no cover - environment dependent
    try:
        import repro  # noqa: F401
    except ModuleNotFoundError:
        sys.path.insert(0, str(_SRC))

from repro.apps.app_class import ApplicationClass
from repro.platform.spec import PlatformSpec
from repro.simulation.config import SimulationConfig
from repro.units import DAY, GB, HOUR


@pytest.fixture
def tiny_platform() -> PlatformSpec:
    """A 16-node toy platform with a 1 GB/s file system."""
    return PlatformSpec(
        name="TestBox",
        num_nodes=16,
        cores_per_node=4,
        memory_per_node_bytes=8.0 * GB,
        io_bandwidth_bytes_per_s=1.0 * GB,
        node_mtbf_s=60.0 * DAY,
    )


@pytest.fixture
def tiny_classes() -> tuple[ApplicationClass, ApplicationClass]:
    """Two small application classes filling the toy platform."""
    alpha = ApplicationClass(
        name="alpha",
        nodes=4,
        work_s=2.0 * HOUR,
        input_bytes=2.0 * GB,
        output_bytes=4.0 * GB,
        checkpoint_bytes=8.0 * GB,
        workload_share=0.6,
    )
    beta = ApplicationClass(
        name="beta",
        nodes=2,
        work_s=1.0 * HOUR,
        input_bytes=1.0 * GB,
        output_bytes=2.0 * GB,
        checkpoint_bytes=3.0 * GB,
        workload_share=0.4,
    )
    return alpha, beta


@pytest.fixture
def spool_workers():
    """Factory: run N :class:`SpoolWorker` threads against a spool/cache pair.

    Threads exercise the identical claim/simulate/cache/ack code path that
    separate worker processes run in production (the spool itself only sees
    filesystem operations either way) while keeping tests fast and
    deterministic.  Usage::

        with spool_workers(spool_dir, cache_dir, count=2) as workers:
            ...  # submit through a spool-backend runner
    """

    @contextlib.contextmanager
    def run(spool_dir, cache_dir, *, count=1, lease_ttl_s=30.0, **worker_kwargs):
        from repro.distributed import SpoolWorker, WorkSpool
        from repro.exec import ResultCache

        stop = threading.Event()
        workers, threads = [], []
        for index in range(count):
            worker = SpoolWorker(
                WorkSpool(spool_dir, lease_ttl_s=lease_ttl_s),
                ResultCache(cache_dir),
                worker_id=f"test-worker-{index}",
                poll_interval_s=0.01,
                stop_event=stop,
                **worker_kwargs,
            )
            thread = threading.Thread(target=worker.run, daemon=True)
            thread.start()
            workers.append(worker)
            threads.append(thread)
        try:
            yield workers
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=60)

    return run


@pytest.fixture
def fs_faults():
    """Factory: arm the spool's FS-ops choke point with a scripted hook.

    Yields an installer that accepts either a plain ``(op, path)`` callable
    or keyword arguments forwarded to
    :class:`repro.distributed.fsops.FaultInjector` (``rate``/``delay_s``/
    ``ops``/``seed``); returns the installed hook.  Whatever was installed
    is restored on test exit, so armed faults never leak across tests.
    Usage::

        injector = fs_faults(rate=0.2, seed=7)       # seeded random faults
        fs_faults(lambda op, path: ...)              # scripted faults
        fs_faults(None)                              # disarm mid-test
    """
    from repro.distributed import fsops

    initial = fsops.fault_hook()
    installed = [initial]

    def arm(hook=None, **kwargs):
        if kwargs:
            assert hook is None, "pass either a hook or FaultInjector kwargs"
            hook = fsops.FaultInjector(**kwargs)
        fsops.install_fault_hook(hook)
        installed[0] = hook
        return hook

    try:
        yield arm
    finally:
        fsops.install_fault_hook(initial)


@pytest.fixture
def tiny_config(tiny_platform, tiny_classes):
    """Factory for quick simulation configurations on the toy platform."""

    def make(strategy: str = "least-waste", **overrides) -> SimulationConfig:
        parameters = dict(
            platform=tiny_platform,
            classes=tiny_classes,
            strategy=strategy,
            horizon_s=1.0 * DAY,
            warmup_s=2.0 * HOUR,
            cooldown_s=2.0 * HOUR,
            seed=123,
        )
        parameters.update(overrides)
        return SimulationConfig(**parameters)

    return make

"""The campaign-results HTTP service (repro.service) and its CLI front door.

Exercised over real sockets (port 0, loopback) with urllib: submit a
campaign, poll it to completion, and check that everything the API serves
— summaries, CSV, cell listings, waste decompositions — is produced by the
same code paths as the offline CLI, so a served CSV is byte-identical to
``coopckpt campaign --csv`` over the same cache.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request

import pytest

from repro.errors import ConfigurationError
from repro.cli import main
from repro.scenarios.report import campaign_to_csv
from repro.scenarios.runner import CampaignRunner
from repro.service import CampaignService, JobManager, campaign_from_request
from repro.store import open_store

# The same schema Campaign.from_file reads: base preset + overrides + axes.
TOY_MATRIX = {
    "name": "toy-served",
    "base": "smoke",
    "overrides": {
        "num_runs": 2,
        "horizon_days": 0.5,
        "strategies": ["ordered-daly", "least-waste"],
    },
    "axes": [{"name": "io", "key": "bandwidth_gbs", "values": [1.0, 4.0]}],
}


@pytest.fixture
def service(tmp_path):
    store = open_store("sqlite", tmp_path / "db.sqlite")
    svc = CampaignService(JobManager(store), port=0).start()
    yield svc
    svc.close()
    store.close()


def _get(service, path):
    with urllib.request.urlopen(service.url + path) as response:
        return response.status, response.read()


def _get_json(service, path):
    status, body = _get(service, path)
    return status, json.loads(body)


def _post_json(service, path, payload):
    request = urllib.request.Request(
        service.url + path,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request) as response:
        return response.status, json.loads(response.read())


def _submit_and_wait(service, payload, timeout_s: float = 60.0) -> dict:
    status, snapshot = _post_json(service, "/v1/jobs", payload)
    assert status == 202
    deadline = time.time() + timeout_s
    while snapshot["state"] in ("queued", "running"):
        assert time.time() < deadline, f"job stuck: {snapshot}"
        time.sleep(0.05)
        _, snapshot = _get_json(service, f"/v1/jobs/{snapshot['id']}")
    return snapshot


# ---------------------------------------------------------------- lifecycle
def test_healthz_metrics_and_presets(service):
    assert _get_json(service, "/healthz") == (200, {"ok": True})
    status, metrics = _get_json(service, "/metrics")
    assert status == 200
    assert metrics["store"]["kind"] == "sqlite"
    assert metrics["jobs"] == {}
    status, presets = _get_json(service, "/v1/presets")
    assert "smoke" in presets["presets"]


def test_submitted_campaign_runs_to_done_with_full_progress(service):
    snapshot = _submit_and_wait(service, {"campaign": TOY_MATRIX})
    assert snapshot["state"] == "done", snapshot
    assert snapshot["campaign"] == "toy-served"
    assert snapshot["cells_done"] == snapshot["cells_total"] == 4
    assert snapshot["seeds_simulated"] == 8 and snapshot["seeds_cached"] == 0
    assert snapshot["finished_at"] >= snapshot["started_at"]
    status, listing = _get_json(service, "/v1/jobs")
    assert status == 200 and len(listing["jobs"]) == 1

    # Resubmitting the identical campaign is served entirely from the store.
    rerun = _submit_and_wait(service, {"campaign": TOY_MATRIX})
    assert rerun["state"] == "done"
    assert rerun["seeds_cached"] == 8 and rerun["seeds_simulated"] == 0


def test_served_result_and_csv_match_offline_run(service, tmp_path):
    from repro.scenarios.campaign import Campaign

    snapshot = _submit_and_wait(service, {"campaign": TOY_MATRIX})
    assert snapshot["state"] == "done", snapshot
    job_id = snapshot["id"]
    status, result = _get_json(service, f"/v1/jobs/{job_id}/result")
    assert status == 200
    assert [o["scenario"] for o in result["outcomes"]] == ["io=1", "io=4"]

    status, served_csv = _get(service, f"/v1/jobs/{job_id}/csv")
    assert status == 200

    # The offline reference: same campaign, fresh cacheless run, rendered by
    # the same exporter the `campaign --csv` command calls.
    offline = CampaignRunner().run(
        Campaign.from_mapping(TOY_MATRIX, source="<test>")
    )
    assert served_csv.decode("utf-8") == campaign_to_csv(offline)
    for outcome in offline.outcomes:
        served = next(
            o for o in result["outcomes"] if o["scenario"] == outcome.scenario.name
        )
        for strategy, summary in outcome.summaries.items():
            assert served["summaries"][strategy] == pytest.approx(
                summary.as_dict(), abs=0
            )


def test_cells_listing_filters_and_values(service):
    snapshot = _submit_and_wait(service, {"campaign": TOY_MATRIX})
    job_id = snapshot["id"]
    status, payload = _get_json(service, f"/v1/jobs/{job_id}/cells")
    assert status == 200 and len(payload["cells"]) == 4
    cell = payload["cells"][0]
    assert set(cell) >= {"scenario", "strategy", "spec", "digest", "stats", "seeds", "values"}
    assert len(cell["values"]) == 2  # one stored value per derived seed
    assert all(value is not None for value in cell["values"].values())
    assert sum(c["best"] for c in payload["cells"]) == 2  # one winner per scenario

    _, by_scenario = _get_json(service, f"/v1/jobs/{job_id}/cells?scenario=io%3D1")
    assert {c["scenario"] for c in by_scenario["cells"]} == {"io=1"}
    _, by_strategy = _get_json(service, f"/v1/jobs/{job_id}/cells?strategy=least-waste")
    assert {c["strategy"] for c in by_strategy["cells"]} == {"least-waste"}
    seed = cell["seeds"][0]
    _, by_seed = _get_json(service, f"/v1/jobs/{job_id}/cells?seed={seed}")
    assert by_seed["cells"] and all(c["seeds"] == [seed] for c in by_seed["cells"])
    _, none = _get_json(service, f"/v1/jobs/{job_id}/cells?strategy=unknown")
    assert none["cells"] == []


def test_trace_endpoint_serves_a_consistent_decomposition(service):
    snapshot = _submit_and_wait(service, {"campaign": TOY_MATRIX})
    job_id = snapshot["id"]
    path = f"/v1/jobs/{job_id}/trace?scenario=io%3D1&strategy=least-waste&rep=0"
    status, decomposition = _get_json(service, path)
    assert status == 200
    assert decomposition["scenario"] == "io=1"
    assert decomposition["strategy"] == "least-waste"
    categories = decomposition["categories"]
    useful = categories["compute"] + categories["base_io"]
    waste = sum(
        categories[name]
        for name in ("io_delay", "checkpoint", "checkpoint_wait", "recovery", "lost_work")
    )
    # The decomposition's recomputed waste ratio repr-matches the stored
    # per-seed value the cells endpoint serves for the same repetition.
    _, cells = _get_json(
        service, f"/v1/jobs/{job_id}/cells?scenario=io%3D1&strategy=least-waste"
    )
    (cell,) = cells["cells"]
    recorded = cell["values"][str(cell["seeds"][0])]
    assert repr(waste / (useful + waste)) == repr(recorded)


def test_preset_submission_with_overrides(service):
    snapshot = _submit_and_wait(
        service,
        {"preset": "smoke", "num_runs": 1, "horizon_days": 1, "strategies": ["least-waste"]},
    )
    assert snapshot["state"] == "done", snapshot
    assert snapshot["campaign"] == "smoke"
    _, result = _get_json(service, f"/v1/jobs/{snapshot['id']}/result")
    assert result["strategies"] == ["least-waste"]


# ------------------------------------------------------------------ errors
def _expect_error(service, path, *, method="GET", data=None):
    request = urllib.request.Request(
        service.url + path, data=data, method=method
    )
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        urllib.request.urlopen(request)
    return excinfo.value.code, json.loads(excinfo.value.read())


def test_http_error_statuses(service):
    code, body = _expect_error(service, "/v1/jobs/job-9999")
    assert code == 404 and "no job" in body["error"]
    code, _ = _expect_error(service, "/nope")
    assert code == 404
    code, body = _expect_error(service, "/v1/jobs", method="POST", data=b"{}")
    assert code == 400 and "exactly one campaign source" in body["error"]
    code, _ = _expect_error(service, "/v1/jobs", method="POST", data=b"not json")
    assert code == 400
    code, body = _expect_error(
        service,
        "/v1/jobs",
        method="POST",
        data=json.dumps({"preset": "smoke", "num_runs": -1}).encode(),
    )
    assert code == 400 and "num_runs" in body["error"]
    # Trace endpoint insists on its addressing parameters.
    done = _submit_and_wait(service, {"campaign": TOY_MATRIX})
    code, body = _expect_error(service, f"/v1/jobs/{done['id']}/trace")
    assert code == 400 and "scenario" in body["error"]


def test_campaign_from_request_validates_shapes():
    with pytest.raises(ConfigurationError, match="exactly one campaign source"):
        campaign_from_request({"preset": "smoke", "toml": "x"})
    with pytest.raises(ConfigurationError, match="only apply to presets"):
        campaign_from_request({"campaign": TOY_MATRIX, "num_runs": 5})
    with pytest.raises(ConfigurationError, match="positive integer"):
        campaign_from_request({"preset": "smoke", "num_runs": 0})
    with pytest.raises(ConfigurationError, match="array of spec strings"):
        campaign_from_request({"preset": "smoke", "strategies": "least-waste"})
    with pytest.raises(ConfigurationError, match="cannot parse submitted TOML"):
        campaign_from_request({"toml": "= not toml ="})
    campaign = campaign_from_request({"toml": 'name = "t"\nbase = "smoke"\n'})
    assert campaign.name == "t"


def test_failed_job_reports_its_error(service):
    # A negative warmup passes campaign construction but blows up when the
    # job thread builds the first simulation — the job must land in
    # 'failed' with the error recorded, never kill the service.
    broken = {
        **TOY_MATRIX,
        "overrides": {**TOY_MATRIX["overrides"], "warmup_days": -1.0},
    }
    snapshot = _submit_and_wait(service, {"campaign": broken})
    assert snapshot["state"] == "failed", snapshot
    assert snapshot["error"]
    code, _ = _expect_error(service, f"/v1/jobs/{snapshot['id']}/csv")
    assert code == 409  # no result to export
    # The service is still healthy afterwards.
    assert _get_json(service, "/healthz") == (200, {"ok": True})


# ------------------------------------------------------------------ CLI
def test_serve_cli_misconfigurations_exit_2(tmp_path, capsys):
    cases = [
        ["serve", "--cache-dir", str(tmp_path / "c"), "--port", "99999"],
        ["serve", "--cache-dir", str(tmp_path / "c"), "--workers", "0"],
        ["serve", "--cache-dir", str(tmp_path / "c"), "--store", "sqlte"],
        ["serve", "--cache-dir", str(tmp_path / "c"), "--host", "256.0.0.1"],
        ["cache", "stats", "--cache-dir", str(tmp_path / "absent")],
        ["cache", "stats", "--cache-dir", str(tmp_path), "--store", "filesys"],
        ["cache", "export", "--cache-dir", str(tmp_path / "absent"), "--to", str(tmp_path / "o")],
        ["campaign", "--preset", "smoke", "--store", "sqlite"],  # no --cache-dir
    ]
    for argv in cases:
        assert main(argv) == 2, argv
        err = capsys.readouterr().err
        assert err.startswith("error:"), (argv, err)
        assert "Traceback" not in err
    # The typo'd kind comes back with a suggestion.
    main(["cache", "stats", "--cache-dir", str(tmp_path), "--store", "sqlte"])
    assert "did you mean 'sqlite'" in capsys.readouterr().err


def test_busy_port_is_a_clean_error(tmp_path, capsys):
    store = open_store("sqlite", tmp_path / "db.sqlite")
    blocker = CampaignService(JobManager(store), port=0)
    try:
        code = main(
            [
                "serve",
                "--cache-dir",
                str(tmp_path / "other.sqlite"),
                "--store",
                "sqlite",
                "--port",
                str(blocker.port),
            ]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert f"cannot serve on 127.0.0.1:{blocker.port}" in err
    finally:
        blocker.close()
        store.close()


def test_cache_export_import_cli_roundtrip(tmp_path, capsys):
    source = open_store("filesystem", tmp_path / "fs")
    source.put("a" * 64, "least-waste", 1, 0.25)
    source.put_trace("a" * 64, "least-waste", 1, {"waste": 0.25})
    source.close()

    assert main(
        ["cache", "export", "--cache-dir", str(tmp_path / "fs"), "--to", str(tmp_path / "db.sqlite")]
    ) == 0
    out = capsys.readouterr().out
    assert "copied 1 entry, 1 trace sidecar(s)" in out

    assert main(
        ["cache", "stats", "--cache-dir", str(tmp_path / "db.sqlite"), "--store", "sqlite"]
    ) == 0
    assert "entries      : 1" in capsys.readouterr().out

    assert main(
        ["cache", "import", "--cache-dir", str(tmp_path / "back"), "--from", str(tmp_path / "db.sqlite")]
    ) == 0
    capsys.readouterr()
    entry = tmp_path / "fs" / "aa" / ("a" * 64) / "least-waste" / "1.json"
    twin = tmp_path / "back" / "aa" / ("a" * 64) / "least-waste" / "1.json"
    assert twin.read_bytes() == entry.read_bytes()
    trace = entry.with_suffix(".trace")
    assert trace.with_name(trace.name).read_bytes() == (
        tmp_path / "back" / "aa" / ("a" * 64) / "least-waste" / "1.trace"
    ).read_bytes()

"""Regular (non-checkpoint) application I/O during the compute phase.

The APEX table does not quantify routine I/O, but the model supports it
(§2: "regular I/O operations are evenly distributed over its makespan").
These tests exercise the code path with explicit routine volumes.
"""

from __future__ import annotations

import pytest

from repro.apps.app_class import ApplicationClass
from repro.apps.job import Job
from repro.platform.failures import FailureEvent, FailureTrace
from repro.simulation.config import SimulationConfig
from repro.simulation.simulator import Simulation
from repro.simulation.trace import TraceEventType
from repro.units import DAY, GB, HOUR


@pytest.fixture
def io_heavy_class(tiny_platform) -> ApplicationClass:
    return ApplicationClass(
        name="io-heavy",
        nodes=4,
        work_s=2 * HOUR,
        input_bytes=2 * GB,
        output_bytes=4 * GB,
        checkpoint_bytes=8 * GB,
        routine_io_bytes=16 * GB,
        workload_share=1.0,
    )


def make_config(tiny_platform, io_heavy_class, strategy: str, chunks: int = 4, **overrides):
    parameters = dict(
        platform=tiny_platform,
        classes=(io_heavy_class,),
        strategy=strategy,
        horizon_s=1 * DAY,
        warmup_s=0.0,
        cooldown_s=0.0,
        seed=1,
        routine_io_chunks=chunks,
        collect_trace=True,
    )
    parameters.update(overrides)
    return SimulationConfig(**parameters)


@pytest.mark.parametrize("strategy", ["oblivious-fixed", "ordered-fixed", "orderednb-daly", "least-waste"])
def test_routine_io_chunks_are_performed_and_accounted(tiny_platform, io_heavy_class, strategy):
    config = make_config(tiny_platform, io_heavy_class, strategy)
    sim = Simulation(
        config,
        jobs=[Job(app_class=io_heavy_class, total_work_s=2 * HOUR)],
        failure_trace=FailureTrace([], config.horizon_s),
    )
    result = sim.run()
    assert result.jobs_completed == 1
    # All four chunks were transferred.
    assert len(sim.trace.of_kind(TraceEventType.REGULAR_IO_DONE)) == 4
    # Their un-dilated time is useful (base I/O includes input + output + routine).
    bandwidth = config.platform.io_bandwidth_bytes_per_s
    expected_base = (
        io_heavy_class.input_bytes + io_heavy_class.output_bytes + io_heavy_class.routine_io_bytes
    ) / bandwidth * io_heavy_class.nodes
    assert result.breakdown.base_io == pytest.approx(expected_base, rel=1e-6)


def test_routine_io_disabled_with_zero_chunks(tiny_platform, io_heavy_class):
    config = make_config(tiny_platform, io_heavy_class, "ordered-fixed", chunks=0)
    sim = Simulation(
        config,
        jobs=[Job(app_class=io_heavy_class, total_work_s=2 * HOUR)],
        failure_trace=FailureTrace([], config.horizon_s),
    )
    result = sim.run()
    assert result.jobs_completed == 1
    assert len(sim.trace.of_kind(TraceEventType.REGULAR_IO_DONE)) == 0


def test_completion_time_includes_routine_io(tiny_platform, io_heavy_class):
    config = make_config(tiny_platform, io_heavy_class, "ordered-fixed")
    sim = Simulation(
        config,
        jobs=[Job(app_class=io_heavy_class, total_work_s=2 * HOUR)],
        failure_trace=FailureTrace([], config.horizon_s),
    )
    sim.run()
    job = sim.jobs[0]
    bandwidth = config.platform.io_bandwidth_bytes_per_s
    io_time = (
        io_heavy_class.input_bytes + io_heavy_class.output_bytes + io_heavy_class.routine_io_bytes
    ) / bandwidth
    ckpt_time = job.checkpoints_completed * io_heavy_class.checkpoint_bytes / bandwidth
    assert job.end_time == pytest.approx(2 * HOUR + io_time + ckpt_time, rel=1e-6)


def test_checkpoint_due_during_routine_io_is_deferred_not_lost(tiny_platform, io_heavy_class):
    """If the checkpoint period elapses while the job is blocked on routine
    I/O, the checkpoint is taken right after the I/O completes."""
    config = make_config(
        tiny_platform,
        io_heavy_class,
        "ordered-fixed",
        chunks=1,
        # Make the routine transfer very long by shrinking the bandwidth, so
        # the hourly checkpoint falls due in the middle of it.
        platform=tiny_platform.with_bandwidth(4e6),  # 4 MB/s
        horizon_s=3 * DAY,
    )
    sim = Simulation(
        config,
        jobs=[Job(app_class=io_heavy_class, total_work_s=2 * HOUR)],
        failure_trace=FailureTrace([], 3 * DAY),
    )
    result = sim.run()
    assert result.jobs_completed == 1
    assert result.checkpoints_completed >= 1


def test_failure_during_routine_io_restarts_cleanly(tiny_platform, io_heavy_class):
    config = make_config(tiny_platform, io_heavy_class, "ordered-daly")
    # The single chunk falls at 40% of the work (~48 min); fail shortly after
    # the work starts so the job is likely in or near its routine I/O.
    trace = FailureTrace([FailureEvent(0.5 * HOUR, 0)], horizon=config.horizon_s)
    sim = Simulation(
        config,
        jobs=[Job(app_class=io_heavy_class, total_work_s=2 * HOUR)],
        failure_trace=trace,
    )
    result = sim.run()
    assert result.jobs_failed == 1
    assert result.restarts_submitted == 1
    assert result.jobs_completed == 1

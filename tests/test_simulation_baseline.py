"""Failure-free baseline usage (repro.simulation.baseline)."""

from __future__ import annotations

import pytest

from repro.apps.job import Job
from repro.platform.failures import FailureTrace
from repro.simulation.baseline import baseline_job_node_seconds, baseline_node_seconds
from repro.simulation.simulator import Simulation
from repro.units import DAY, HOUR


def test_baseline_of_one_job_is_work_plus_undilated_io(tiny_platform, tiny_classes):
    job = Job(app_class=tiny_classes[0], total_work_s=2 * HOUR)
    bandwidth = tiny_platform.io_bandwidth_bytes_per_s
    io_time = (tiny_classes[0].input_bytes + tiny_classes[0].output_bytes) / bandwidth
    expected = job.nodes * (2 * HOUR + io_time)
    assert baseline_job_node_seconds(job, tiny_platform) == pytest.approx(expected)


def test_baseline_sums_over_jobs(tiny_platform, tiny_classes):
    jobs = [
        Job(app_class=tiny_classes[0], total_work_s=2 * HOUR),
        Job(app_class=tiny_classes[1], total_work_s=1 * HOUR),
    ]
    total = baseline_node_seconds(jobs, tiny_platform)
    assert total == pytest.approx(sum(baseline_job_node_seconds(j, tiny_platform) for j in jobs))


def test_simulated_useful_work_matches_baseline_without_failures(tiny_config, tiny_classes):
    """With no failures and the full window measured, the useful node-seconds
    recorded by the simulator equal the analytic baseline of the completed
    jobs (compute + un-dilated application I/O)."""
    config = tiny_config("least-waste", horizon_s=1 * DAY, warmup_s=0.0, cooldown_s=0.0)
    jobs = [
        Job(app_class=tiny_classes[0], total_work_s=3 * HOUR, priority=0.0),
        Job(app_class=tiny_classes[1], total_work_s=2 * HOUR, priority=1.0),
    ]
    sim = Simulation(config, jobs=jobs, failure_trace=FailureTrace([], config.horizon_s))
    result = sim.run()
    assert result.jobs_completed == 2
    expected_useful = baseline_node_seconds(jobs, config.platform)
    assert result.breakdown.useful == pytest.approx(expected_useful, rel=1e-6)

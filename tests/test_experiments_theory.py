"""Theoretical-model experiment helpers (repro.experiments.theory)."""

from __future__ import annotations

import pytest

from repro.errors import AnalysisError
from repro.experiments.theory import steady_state_classes, theoretical_waste
from repro.workloads.apex import apex_workload
from repro.workloads.cielo import cielo_platform
from repro.units import HOUR


def test_steady_state_counts_follow_workload_shares():
    platform = cielo_platform(bandwidth_gbs=80.0)
    workload = apex_workload(platform)
    classes = {c.name: c for c in steady_state_classes(workload, platform)}
    # EAP: 66% of 8944 nodes spread over 1024-node jobs.
    assert classes["EAP"].count == pytest.approx(0.66 * 8944 / 1024, rel=1e-6)
    assert classes["EAP"].nodes == 1024.0
    # Checkpoint time is size / bandwidth.
    eap = next(a for a in workload if a.name == "EAP")
    assert classes["EAP"].checkpoint_time == pytest.approx(eap.checkpoint_bytes / (80e9))
    # Counts add up to (almost) the full machine.
    total_nodes = sum(c.count * c.nodes for c in classes.values())
    assert total_nodes == pytest.approx(platform.num_nodes, rel=0.01)


def test_theoretical_waste_decreases_with_bandwidth_and_reliability():
    workload_40 = apex_workload(cielo_platform(bandwidth_gbs=40.0))
    bound_40 = theoretical_waste(workload_40, cielo_platform(bandwidth_gbs=40.0))
    bound_160 = theoretical_waste(apex_workload(cielo_platform(bandwidth_gbs=160.0)), cielo_platform(bandwidth_gbs=160.0))
    assert bound_160.waste < bound_40.waste

    fragile = cielo_platform(bandwidth_gbs=40.0, node_mtbf_years=2.0)
    reliable = cielo_platform(bandwidth_gbs=40.0, node_mtbf_years=50.0)
    assert (
        theoretical_waste(apex_workload(reliable), reliable).waste
        < theoretical_waste(apex_workload(fragile), fragile).waste
    )


def test_theoretical_periods_are_daly_when_unconstrained():
    platform = cielo_platform(bandwidth_gbs=160.0)
    bound = theoretical_waste(apex_workload(platform), platform)
    assert not bound.constrained
    assert bound.periods == bound.daly_periods
    # Sanity: periods are hours-scale, not seconds or days.
    assert all(0.5 * HOUR < p < 24 * HOUR for p in bound.periods)


def test_constraint_activates_at_very_low_bandwidth():
    platform = cielo_platform(bandwidth_gbs=10.0)
    bound = theoretical_waste(apex_workload(platform), platform)
    assert bound.constrained
    assert bound.io_pressure == pytest.approx(1.0, rel=1e-6)
    assert bound.waste_fraction < bound.waste


def test_requires_nonempty_workload_with_shares(tiny_platform, tiny_classes):
    with pytest.raises(AnalysisError):
        theoretical_waste([], tiny_platform)
    shareless = [
        tiny_classes[0].__class__(**{**tiny_classes[0].__dict__, "workload_share": 0.0}),
        tiny_classes[1].__class__(**{**tiny_classes[1].__dict__, "workload_share": 0.0}),
    ]
    with pytest.raises(AnalysisError):
        steady_state_classes(shareless, tiny_platform)

"""Windowed node-second accounting (repro.simulation.accounting)."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.simulation.accounting import Accounting, Category


def test_window_properties():
    accounting = Accounting(100.0, 500.0)
    assert accounting.window == (100.0, 500.0)
    assert accounting.window_length == 400.0
    assert accounting.in_window(100.0)
    assert accounting.in_window(500.0)
    assert not accounting.in_window(99.9)
    with pytest.raises(SimulationError):
        Accounting(10.0, 5.0)


def test_interval_clipping():
    accounting = Accounting(100.0, 200.0)
    # Fully inside.
    accounting.record_interval(Category.COMPUTE, 2.0, 120.0, 150.0)
    assert accounting.total(Category.COMPUTE) == pytest.approx(60.0)
    # Straddling the start: only the in-window part counts.
    accounting.record_interval(Category.COMPUTE, 1.0, 50.0, 110.0)
    assert accounting.total(Category.COMPUTE) == pytest.approx(70.0)
    # Straddling the end.
    accounting.record_interval(Category.COMPUTE, 1.0, 190.0, 300.0)
    assert accounting.total(Category.COMPUTE) == pytest.approx(80.0)
    # Completely outside.
    accounting.record_interval(Category.COMPUTE, 5.0, 0.0, 90.0)
    accounting.record_interval(Category.COMPUTE, 5.0, 300.0, 400.0)
    assert accounting.total(Category.COMPUTE) == pytest.approx(80.0)


def test_interval_validation():
    accounting = Accounting(0.0, 100.0)
    with pytest.raises(SimulationError):
        accounting.record_interval(Category.COMPUTE, -1.0, 0.0, 10.0)
    with pytest.raises(SimulationError):
        accounting.record_interval(Category.COMPUTE, 1.0, 10.0, 5.0)


def test_amounts_only_counted_inside_window():
    accounting = Accounting(100.0, 200.0)
    accounting.record_amount(Category.LOST_WORK, 40.0, 150.0)
    accounting.record_amount(Category.LOST_WORK, 40.0, 250.0)
    assert accounting.total(Category.LOST_WORK) == pytest.approx(40.0)
    with pytest.raises(SimulationError):
        accounting.record_amount(Category.LOST_WORK, -1.0, 150.0)


def test_move_amount_reattributes_between_categories():
    accounting = Accounting(0.0, 100.0)
    accounting.record_interval(Category.COMPUTE, 1.0, 0.0, 50.0)
    accounting.move_amount(Category.COMPUTE, Category.LOST_WORK, 20.0, 50.0)
    assert accounting.total(Category.COMPUTE) == pytest.approx(30.0)
    assert accounting.total(Category.LOST_WORK) == pytest.approx(20.0)
    # A move triggered outside the window does nothing.
    accounting.move_amount(Category.COMPUTE, Category.LOST_WORK, 10.0, 500.0)
    assert accounting.total(Category.LOST_WORK) == pytest.approx(20.0)


def test_useful_waste_split_and_ratio():
    accounting = Accounting(0.0, 1000.0)
    accounting.record_interval(Category.COMPUTE, 1.0, 0.0, 600.0)
    accounting.record_interval(Category.BASE_IO, 1.0, 600.0, 700.0)
    accounting.record_interval(Category.CHECKPOINT, 1.0, 700.0, 800.0)
    accounting.record_interval(Category.RECOVERY, 1.0, 800.0, 850.0)
    accounting.record_interval(Category.IO_DELAY, 1.0, 850.0, 900.0)
    assert accounting.useful_node_seconds() == pytest.approx(700.0)
    assert accounting.waste_node_seconds() == pytest.approx(200.0)
    assert accounting.waste_ratio() == pytest.approx(200.0 / 700.0)


def test_waste_ratio_degenerate_cases():
    empty = Accounting(0.0, 10.0)
    assert empty.waste_ratio() == 0.0
    only_waste = Accounting(0.0, 10.0)
    only_waste.record_interval(Category.CHECKPOINT, 1.0, 0.0, 5.0)
    assert only_waste.waste_ratio() == float("inf")


def test_allocation_tracking():
    accounting = Accounting(100.0, 200.0)
    accounting.record_allocation(4.0, 0.0, 300.0)
    assert accounting.allocated_node_seconds == pytest.approx(4.0 * 100.0)
    with pytest.raises(SimulationError):
        accounting.record_allocation(-1.0, 0.0, 10.0)


def test_category_usefulness_flags():
    assert Category.COMPUTE.useful
    assert Category.BASE_IO.useful
    for category in (
        Category.IO_DELAY,
        Category.CHECKPOINT,
        Category.CHECKPOINT_WAIT,
        Category.RECOVERY,
        Category.LOST_WORK,
    ):
        assert not category.useful


def test_totals_returns_a_copy():
    accounting = Accounting(0.0, 10.0)
    totals = accounting.totals()
    totals[Category.COMPUTE] = 1e9
    assert accounting.total(Category.COMPUTE) == 0.0

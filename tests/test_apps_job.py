"""Job state and progress tracking (repro.apps.job)."""

from __future__ import annotations

import pytest

from repro.apps.job import Job
from repro.apps.phases import JobState
from repro.errors import SimulationError
from repro.units import HOUR


@pytest.fixture
def job(tiny_classes) -> Job:
    return Job(app_class=tiny_classes[0], total_work_s=2 * HOUR)


def test_job_inherits_class_characteristics(tiny_classes, job):
    alpha = tiny_classes[0]
    assert job.nodes == alpha.nodes
    assert job.input_bytes == alpha.input_bytes
    assert job.output_bytes == alpha.output_bytes
    assert job.checkpoint_bytes == alpha.checkpoint_bytes
    assert alpha.name in job.name
    assert job.state is JobState.PENDING
    assert not job.finished


def test_job_ids_are_unique(tiny_classes):
    a = Job(app_class=tiny_classes[0], total_work_s=10.0)
    b = Job(app_class=tiny_classes[0], total_work_s=10.0)
    assert a.job_id != b.job_id


def test_progress_accumulates_between_begin_and_pause(job):
    job.begin_progress(100.0)
    assert job.progressing
    assert job.work_done_at(160.0) == pytest.approx(60.0)
    delta = job.pause_progress(160.0)
    assert delta == pytest.approx(60.0)
    assert job.work_done_s == pytest.approx(60.0)
    assert not job.progressing
    # Pausing again is a harmless no-op returning 0.
    assert job.pause_progress(200.0) == 0.0


def test_double_begin_progress_rejected(job):
    job.begin_progress(0.0)
    with pytest.raises(SimulationError):
        job.begin_progress(1.0)


def test_negative_progress_interval_rejected(job):
    job.begin_progress(100.0)
    with pytest.raises(SimulationError):
        job.pause_progress(50.0)


def test_sync_progress_folds_without_stopping(job):
    job.begin_progress(0.0)
    job.sync_progress(30.0)
    assert job.work_done_s == pytest.approx(30.0)
    assert job.progressing
    job.pause_progress(50.0)
    assert job.work_done_s == pytest.approx(50.0)


def test_work_done_is_capped_at_total(job):
    job.begin_progress(0.0)
    assert job.work_done_at(10 * HOUR) == pytest.approx(job.total_work_s)
    assert job.remaining_work_at(10 * HOUR) == 0.0


def test_protect_work_monotone_and_capped(job):
    job.begin_progress(0.0)
    job.pause_progress(HOUR)
    job.protect_work(HOUR)
    assert job.work_protected_s == pytest.approx(HOUR)
    assert job.checkpoints_completed == 1
    with pytest.raises(SimulationError):
        job.protect_work(HOUR / 2)
    job.protect_work(100 * HOUR)  # capped at total work
    assert job.work_protected_s == pytest.approx(job.total_work_s)


def test_unprotected_work(job):
    job.begin_progress(0.0)
    job.pause_progress(HOUR)
    assert job.unprotected_work_at(HOUR) == pytest.approx(HOUR)
    job.protect_work(0.5 * HOUR)
    assert job.unprotected_work_at(HOUR) == pytest.approx(0.5 * HOUR)


def test_restart_naming_and_priority(tiny_classes):
    restart = Job(
        app_class=tiny_classes[1],
        total_work_s=HOUR,
        is_restart=True,
        parent_id=7,
        restart_count=2,
        priority=-5.0,
        input_bytes=tiny_classes[1].checkpoint_bytes,
    )
    assert restart.is_restart
    assert "r2" in restart.name
    assert restart.parent_id == 7
    assert restart.input_bytes == tiny_classes[1].checkpoint_bytes


def test_invalid_job_parameters(tiny_classes):
    with pytest.raises(SimulationError):
        Job(app_class=tiny_classes[0], total_work_s=0.0)
    with pytest.raises(SimulationError):
        Job(app_class=tiny_classes[0], total_work_s=10.0, input_bytes=-1.0)


def test_succeeded_only_when_completed(job):
    assert not job.succeeded
    job.state = JobState.COMPLETED
    assert job.succeeded
    assert job.finished

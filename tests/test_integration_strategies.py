"""Cross-strategy integration tests on identical initial conditions.

These tests replay the *same* job mix and the *same* failure trace under
every strategy and check the qualitative relationships the paper reports,
at a scale small enough for the unit-test suite (the full-scale shape checks
live in the benchmarks).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.iosched.registry import STRATEGIES
from repro.platform.failures import generate_failure_trace
from repro.simulation.config import SimulationConfig
from repro.simulation.simulator import Simulation
from repro.units import DAY, GB, HOUR, YEAR
from repro.apps.app_class import ApplicationClass
from repro.platform.spec import PlatformSpec
from repro.workloads.generator import WorkloadSpec, generate_jobs


@pytest.fixture(scope="module")
def contended_platform() -> PlatformSpec:
    """A platform whose file system is clearly under-provisioned."""
    return PlatformSpec(
        name="Contended",
        num_nodes=64,
        cores_per_node=1,
        memory_per_node_bytes=16.0 * GB,
        io_bandwidth_bytes_per_s=0.5 * GB,
        # A deliberately fragile machine (node MTBF ~ 36 days, system MTBF
        # ~ 14 h) so that the Daly periods fall well below the job durations
        # and every strategy takes checkpoints during the 2-day segment.
        node_mtbf_s=0.1 * YEAR,
    )


@pytest.fixture(scope="module")
def contended_classes() -> tuple[ApplicationClass, ...]:
    return (
        ApplicationClass(
            name="heavy",
            nodes=16,
            work_s=6 * HOUR,
            input_bytes=8 * GB,
            output_bytes=32 * GB,
            checkpoint_bytes=256 * GB,
            workload_share=0.7,
        ),
        ApplicationClass(
            name="light",
            nodes=8,
            work_s=5 * HOUR,
            input_bytes=4 * GB,
            output_bytes=16 * GB,
            checkpoint_bytes=64 * GB,
            workload_share=0.3,
        ),
    )


@pytest.fixture(scope="module")
def strategy_results(contended_platform, contended_classes):
    """One result per strategy, all on identical initial conditions."""
    horizon = 2.0 * DAY
    spec = WorkloadSpec(classes=contended_classes, min_duration_s=horizon)
    jobs_template = generate_jobs(spec, contended_platform, np.random.default_rng(1234))
    trace = generate_failure_trace(contended_platform, horizon, np.random.default_rng(99))

    results = {}
    for strategy in STRATEGIES:
        config = SimulationConfig(
            platform=contended_platform,
            classes=contended_classes,
            strategy=strategy,
            horizon_s=horizon,
            warmup_s=3 * HOUR,
            cooldown_s=3 * HOUR,
            seed=0,
        )
        # Fresh Job objects per run (jobs are mutable), same characteristics.
        jobs = [
            type(job)(
                app_class=job.app_class,
                total_work_s=job.total_work_s,
                submit_time=job.submit_time,
                priority=job.priority,
            )
            for job in jobs_template
        ]
        results[strategy] = Simulation(config, jobs=jobs, failure_trace=trace).run()
    return results


def test_all_strategies_produce_valid_results(strategy_results):
    for strategy, result in strategy_results.items():
        assert result.strategy == strategy
        assert 0.0 <= result.waste_ratio <= 1.0
        assert result.node_utilization > 0.5
        assert result.checkpoints_completed > 0
        assert result.breakdown.compute > 0.0


def test_nonblocking_beats_blocking_with_same_period(strategy_results):
    """Decoupling compute from file-system availability reduces waste (§6.1)."""
    assert (
        strategy_results["orderednb-fixed"].waste_ratio
        <= strategy_results["ordered-fixed"].waste_ratio + 0.02
    )
    assert (
        strategy_results["orderednb-daly"].waste_ratio
        <= strategy_results["ordered-daly"].waste_ratio + 0.02
    )


def test_daly_periods_beat_hourly_fixed_under_contention(strategy_results):
    """On an under-provisioned file system, hourly checkpointing is too much I/O."""
    assert (
        strategy_results["oblivious-daly"].waste_ratio
        <= strategy_results["oblivious-fixed"].waste_ratio + 0.02
    )
    assert (
        strategy_results["ordered-daly"].waste_ratio
        <= strategy_results["ordered-fixed"].waste_ratio + 0.02
    )


def test_least_waste_is_competitive_with_every_other_strategy(strategy_results):
    """Least-Waste is the paper's best performer; allow a small noise margin."""
    least = strategy_results["least-waste"].waste_ratio
    for strategy, result in strategy_results.items():
        assert least <= result.waste_ratio + 0.06, (
            f"least-waste ({least:.3f}) unexpectedly much worse than "
            f"{strategy} ({result.waste_ratio:.3f})"
        )


def test_blocking_strategies_accumulate_wait_time(strategy_results):
    assert strategy_results["ordered-fixed"].breakdown.checkpoint_wait > 0.0
    assert strategy_results["orderednb-fixed"].breakdown.checkpoint_wait == 0.0
    assert strategy_results["least-waste"].breakdown.checkpoint_wait == 0.0
    # Oblivious never waits for a token either; its cost shows up as dilation.
    assert strategy_results["oblivious-fixed"].breakdown.checkpoint_wait == 0.0


def test_identical_failure_trace_used_across_strategies(strategy_results):
    totals = {result.failures_total for result in strategy_results.values()}
    assert len(totals) == 1

"""Command-line interface (repro.cli)."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


def test_parser_knows_all_subcommands():
    parser = build_parser()
    for command in ("table1", "lower-bound", "simulate", "figure1", "figure2", "figure3"):
        args = parser.parse_args([command])
        assert args.command == command


def test_table1_command(capsys):
    assert main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "EAP" in out and "Silverton" in out


def test_lower_bound_command(capsys):
    assert main(["lower-bound", "--bandwidth-gbs", "40"]) == 0
    out = capsys.readouterr().out
    assert "waste lower bound" in out
    assert "EAP" in out


def test_simulate_command_small(capsys):
    assert (
        main(
            [
                "simulate",
                "--strategy",
                "least-waste",
                "--bandwidth-gbs",
                "80",
                "--horizon-days",
                "1.0",
                "--seed",
                "0",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "waste ratio" in out
    assert "least-waste" in out


def test_figure1_command_small(capsys):
    assert (
        main(
            [
                "figure1",
                "--bandwidths-gbs",
                "80",
                "--num-runs",
                "1",
                "--horizon-days",
                "1.0",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "Figure 1" in out
    assert "least-waste" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["not-a-command"])


def test_simulate_rejects_unknown_strategy(capsys):
    # Free-form --strategy goes through the library validator: exit 2 with
    # the registry's message (argparse used to SystemExit via choices=).
    assert main(["simulate", "--strategy", "bogus"]) == 2
    err = capsys.readouterr().err
    assert "unknown strategy 'bogus'" in err


# ------------------------------------------------------- strategy specs
def test_strategies_command_lists_kinds_and_legacy_names(capsys):
    assert main(["strategies"]) == 0
    out = capsys.readouterr().out
    for kind in ("oblivious", "ordered", "orderednb", "least-waste"):
        assert kind in out
    assert "policy" in out and "period_s" in out and "mtbf_bias" in out
    assert "ordered-fixed" in out  # legacy aliases listed
    assert "register_strategy" in out  # points at the extension API


def test_strategies_command_json_is_machine_readable(capsys):
    import json

    assert main(["strategies", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert "ordered" in payload["kinds"]
    params = {p["name"]: p for p in payload["kinds"]["ordered"]["params"]}
    assert params["policy"]["choices"] == ["fixed", "daly"]
    assert params["period_s"]["type"] == "float"
    assert payload["legacy"][-1] == "least-waste"


def test_simulate_accepts_parameterized_spec(capsys):
    assert (
        main(
            [
                "simulate",
                "--strategy", "ordered[policy=fixed,period_s=1800]",
                "--bandwidth-gbs", "80",
                "--horizon-days", "0.5",
                "--seed", "0",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "ordered[policy=fixed,period_s=1800]" in out


def test_campaign_accepts_parameterized_strategies(capsys):
    assert (
        main(
            [
                "campaign",
                "--preset", "smoke",
                "--num-runs", "1",
                "--strategies", "ordered[policy=fixed,period_s=1800]",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "ordered[policy=fixed,period_s=1800]" in out


def test_malformed_strategy_spec_exits_2(capsys):
    assert main(["simulate", "--strategy", "ordered[policy=", "--horizon-days", "0.1"]) == 2
    err = capsys.readouterr().err
    assert "error:" in err
    assert main(["campaign", "--preset", "smoke", "--strategies", "ordered-dally"]) == 2
    err = capsys.readouterr().err
    assert "did you mean 'ordered-daly'?" in err


def test_campaign_csv_has_resolved_spec_column(tmp_path, capsys):
    csv_path = tmp_path / "sweep.csv"
    assert (
        main(
            [
                "campaign",
                "--preset", "period-sweep",
                "--num-runs", "1",
                "--csv", str(csv_path),
            ]
        )
        == 0
    )
    capsys.readouterr()
    import csv as _csv
    import io as _io

    rows = list(_csv.DictReader(_io.StringIO(csv_path.read_text())))
    specs = {row["spec"] for row in rows}
    assert "ordered[policy=daly]" in specs  # the reference cell, resolved
    assert "ordered[policy=fixed,period_s=1800]" in specs
    assert "ordered[policy=fixed,period_s=7200]" in specs

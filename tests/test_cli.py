"""Command-line interface (repro.cli)."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


def test_parser_knows_all_subcommands():
    parser = build_parser()
    for command in ("table1", "lower-bound", "simulate", "figure1", "figure2", "figure3"):
        args = parser.parse_args([command])
        assert args.command == command


def test_table1_command(capsys):
    assert main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "EAP" in out and "Silverton" in out


def test_lower_bound_command(capsys):
    assert main(["lower-bound", "--bandwidth-gbs", "40"]) == 0
    out = capsys.readouterr().out
    assert "waste lower bound" in out
    assert "EAP" in out


def test_simulate_command_small(capsys):
    assert (
        main(
            [
                "simulate",
                "--strategy",
                "least-waste",
                "--bandwidth-gbs",
                "80",
                "--horizon-days",
                "1.0",
                "--seed",
                "0",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "waste ratio" in out
    assert "least-waste" in out


def test_figure1_command_small(capsys):
    assert (
        main(
            [
                "figure1",
                "--bandwidths-gbs",
                "80",
                "--num-runs",
                "1",
                "--horizon-days",
                "1.0",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "Figure 1" in out
    assert "least-waste" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["not-a-command"])


def test_simulate_rejects_unknown_strategy():
    with pytest.raises(SystemExit):
        main(["simulate", "--strategy", "bogus"])

"""Crash-recovery stress tests: random worker kills under load.

The distributed subsystem's headline guarantee is that worker death is
*invisible* in the results: leases expire, peers reclaim, the cache
deduplicates, and the campaign comes out bit-identical to the serial
backend.  These tests enforce that with a seeded chooser that kills worker
threads (``SystemExit`` raised from inside the spool's FS-ops choke point)
at random claim/heartbeat/ack points while a spool-backend submitter runs
a real campaign batch — 25 seeded iterations, each diffed float-for-float
against the serial backend.

Worker thread 0 is never killed, so every iteration keeps at least one
survivor to drain what the dead leave behind (the production analogue: a
fleet where *some* worker outlives the incident).
"""

from __future__ import annotations

import random
import threading
import time

import pytest

from repro.distributed import SpoolWorker, WorkSpool, make_task_specs
from repro.exec import ParallelRunner, ResultCache, WasteRatioTask, config_digest
from repro.stats.montecarlo import derive_seeds

_WORKERS = 3
_SEEDS_PER_RUN = 5
_HORIZON_S = 0.25 * 86400.0


class KillChooser:
    """Seeded hook that kills *expendable* worker threads at random FS ops.

    Only threads named ``stress-worker-N`` with N > 0 are eligible — the
    submitter (main thread) and worker 0 always survive.  ``SystemExit``
    models sudden death: it is not an ``Exception``, so no task-failure
    handler swallows it and the thread dies exactly at the chosen claim /
    heartbeat / ack operation, leaving its lease to expire.
    """

    def __init__(self, seed: int, rate: float) -> None:
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self.rate = rate
        self.kills = 0

    def __call__(self, op: str, path: str) -> None:
        name = threading.current_thread().name
        if not name.startswith("stress-worker-") or name.endswith("-0"):
            return
        with self._lock:
            fire = self._rng.random() < self.rate
            if fire:
                self.kills += 1
        if fire:
            raise SystemExit(f"chooser killed {name} at {op} {path}")


@pytest.fixture
def stress_fleet(fs_faults):
    """Run a worker fleet whose expendable members a chooser may kill."""
    import contextlib

    def die_quietly(worker):
        try:
            worker.run()
        except SystemExit:
            pass  # the modeled sudden death — the thread just ends here

    @contextlib.contextmanager
    def run(spool_dir, cache_dir, *, chooser, lease_ttl_s=0.3):
        fs_faults(chooser)
        stop = threading.Event()
        workers, threads = [], []
        for index in range(_WORKERS):
            worker = SpoolWorker(
                WorkSpool(spool_dir, lease_ttl_s=lease_ttl_s),
                ResultCache(cache_dir),
                worker_id=f"stress-worker-{index}",
                poll_interval_s=0.01,
                batch_size=2,
                stop_event=stop,
            )
            thread = threading.Thread(
                target=die_quietly, args=(worker,), name=f"stress-worker-{index}", daemon=True
            )
            thread.start()
            workers.append(worker)
            threads.append(thread)
        try:
            yield workers
        finally:
            stop.set()
            fs_faults(None)  # dead threads stay dead; survivors drain clean
            for thread in threads:
                thread.join(timeout=60)

    return run


@pytest.mark.parametrize("iteration", range(25))
def test_random_kills_leave_results_bit_identical(
    iteration, tiny_config, tmp_path, stress_fleet
):
    """The acceptance loop: 25 seeded kill schedules, each campaign batch
    byte-identical to serial, each spool fully drained."""
    config = tiny_config(horizon_s=_HORIZON_S)
    seeds = derive_seeds(iteration, _SEEDS_PER_RUN)
    serial = ParallelRunner().run_config(config, seeds)

    spool_dir, cache_dir = tmp_path / "spool", tmp_path / "cache"
    chooser = KillChooser(seed=1000 + iteration, rate=0.02)
    runner = ParallelRunner(
        backend="spool",
        spool_dir=spool_dir,
        cache_dir=cache_dir,
        spool_poll_s=0.01,
        spool_lease_ttl_s=0.3,
        spool_timeout_s=120.0,
    )
    with stress_fleet(spool_dir, cache_dir, chooser=chooser):
        spooled = runner.run_config(config, seeds)

    assert spooled == serial  # float-for-float
    assert [repr(v) for v in spooled] == [repr(v) for v in serial]  # byte-level

    # The submitter may finish (cache-complete) while a dead worker's claim
    # is still inside its lease.  Once the lease expires, a clean drain pass
    # must leave nothing behind — no lost and no failed tasks.
    sweeper = WorkSpool(spool_dir, lease_ttl_s=0.3)
    status = sweeper.status()
    if not status.drained:
        time.sleep(0.35)  # let the dead worker's lease expire
        sweeper.reclaim_expired()
        SpoolWorker(
            sweeper, ResultCache(cache_dir), worker_id="janitor", poll_interval_s=0.01
        ).run(drain=True)
        status = sweeper.status()
    assert status.drained and status.failed == 0


def test_campaign_result_survives_deterministic_mid_batch_kill(
    tmp_path, stress_fleet
):
    """Pin the nastiest single point at full campaign scope: a worker dies
    exactly at its first lease heartbeat, mid-batch; a peer reclaims, and
    the whole ``CampaignResult`` equals the serial backend's, bit for bit."""
    from repro.scenarios.presets import make_campaign
    from repro.scenarios.runner import CampaignRunner

    campaign = make_campaign("smoke", num_runs=2, horizon_days=0.25)
    serial = CampaignRunner(runner=ParallelRunner()).run(campaign)

    killed = threading.Event()

    def kill_first_heartbeat(op: str, path: str) -> None:
        name = threading.current_thread().name
        if op == "utime" and name.startswith("stress-worker-") and not name.endswith("-0"):
            if not killed.is_set():
                killed.set()
                raise SystemExit(f"killed {name} at first heartbeat")

    spool_dir, cache_dir = tmp_path / "spool", tmp_path / "cache"
    runner = ParallelRunner(
        backend="spool",
        spool_dir=spool_dir,
        cache_dir=cache_dir,
        spool_poll_s=0.01,
        spool_lease_ttl_s=0.3,
        spool_timeout_s=120.0,
    )
    with stress_fleet(spool_dir, cache_dir, chooser=kill_first_heartbeat):
        spooled = CampaignRunner(runner=runner).run(campaign)
    assert spooled == serial  # the full campaign table, bit-identical
    assert runner.stats.tasks_run == 0  # the submitter simulated nothing


def test_concurrent_reclaim_sweeps_grant_each_task_exactly_once(tmp_path, tiny_config):
    """Many sweepers racing over the same expired batches must partition the
    reclaimed tasks: every expired task reclaimed by exactly one sweeper."""
    spool = WorkSpool(tmp_path, lease_ttl_s=0.05)
    config = tiny_config(horizon_s=_HORIZON_S)
    digest = config_digest(config)
    seeds = derive_seeds(7, 12)
    specs = make_task_specs(
        WasteRatioTask(config), digest, config.strategy, seeds, chunk_size=1
    )
    assert spool.enqueue_many(specs) == len(specs)
    claimed = 0
    while spool.claim_batch("doomed", limit=3) is not None:
        claimed += 1
    assert claimed >= 1 and spool.status().claimed == len(specs)
    deadline = time.time() + 5.0
    while spool.reclaim_expired() == [] and time.time() < deadline:
        time.sleep(0.01)  # wait out the leases (first sweep may be early)
    # Refill the claims so several batches are expired at once.
    spool2 = WorkSpool(tmp_path, lease_ttl_s=0.05)
    while spool2.claim_batch("doomed-again", limit=3) is not None:
        pass
    time.sleep(0.15)  # let every lease expire

    reclaimed: list[list[str]] = [[] for _ in range(4)]
    sweepers = [WorkSpool(tmp_path, lease_ttl_s=0.05) for _ in range(4)]

    def sweep(index: int) -> None:
        reclaimed[index].extend(sweepers[index].reclaim_expired())

    threads = [threading.Thread(target=sweep, args=(i,)) for i in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=30)

    winners = [task_id for per_sweeper in reclaimed for task_id in per_sweeper]
    assert len(winners) == len(set(winners))  # exactly one winner per task
    status = spool.status()
    assert status.pending == len(specs) and status.claimed == 0

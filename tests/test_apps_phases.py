"""Job states and I/O kinds (repro.apps.phases)."""

from __future__ import annotations

from repro.apps.phases import IOKind, JobState


def test_terminal_states():
    assert JobState.COMPLETED.terminal
    assert JobState.FAILED.terminal
    assert not JobState.COMPUTING.terminal
    assert not JobState.PENDING.terminal


def test_allocated_states():
    assert not JobState.PENDING.allocated
    assert not JobState.COMPLETED.allocated
    assert not JobState.FAILED.allocated
    for state in (
        JobState.INPUT_IO,
        JobState.COMPUTING,
        JobState.CHECKPOINTING,
        JobState.CHECKPOINT_WAIT,
        JobState.OUTPUT_IO,
        JobState.RECOVERY_IO,
        JobState.REGULAR_IO,
        JobState.IO_WAIT,
    ):
        assert state.allocated


def test_io_kind_checkpoint_flag():
    assert IOKind.CHECKPOINT.is_checkpoint
    for kind in (IOKind.INPUT, IOKind.OUTPUT, IOKind.RECOVERY, IOKind.REGULAR):
        assert not kind.is_checkpoint


def test_io_kind_usefulness():
    assert IOKind.INPUT.counts_as_useful
    assert IOKind.OUTPUT.counts_as_useful
    assert IOKind.REGULAR.counts_as_useful
    assert not IOKind.CHECKPOINT.counts_as_useful
    assert not IOKind.RECOVERY.counts_as_useful


def test_enum_values_are_unique_strings():
    values = [state.value for state in JobState]
    assert len(values) == len(set(values))
    assert all(isinstance(v, str) for v in values)

"""Experiment harness: table 1, sweep runner and the figure experiments.

The figure experiments are exercised at a very small scale (tiny horizons,
one or two repetitions) so the whole file stays fast; the full-scale shape
checks live in the benchmark suite.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.exec import ParallelRunner
from repro.experiments.figure1 import Figure1Config, render_figure1, run_figure1
from repro.experiments.figure2 import Figure2Config, render_figure2, run_figure2
from repro.experiments.figure3 import Figure3Config, _min_bandwidth, render_figure3, run_figure3
from repro.experiments.report import render_sweep, render_sweep_detailed
from repro.experiments.runner import ExperimentCell, run_cell, run_sweep
from repro.experiments.table1 import render_table1, table1_rows
from repro.iosched.registry import STRATEGIES
from repro.workloads.apex import APEX_CLASSES


# -------------------------------------------------------------------- table 1
def test_table1_rows_reproduce_the_paper_numbers():
    rows = {str(row["Workflow"]): row for row in table1_rows()}
    assert rows["Workload percentage"]["EAP"] == 66.0
    assert rows["Work time (h)"]["VPIC"] == 157.2
    assert rows["Number of cores"]["Silverton"] == 32768
    assert rows["Checkpoint Size (% of memory)"]["LAP"] == 185.0


def test_render_table1_contains_all_classes():
    text = render_table1()
    for name in APEX_CLASSES:
        assert name in text
    assert "Derived absolute volumes" in text


# --------------------------------------------------------------------- runner
def test_experiment_cell_validation(tiny_platform, tiny_classes):
    with pytest.raises(ConfigurationError):
        ExperimentCell(platform=tiny_platform, workload=tiny_classes, strategy="nope")
    with pytest.raises(ConfigurationError):
        ExperimentCell(platform=tiny_platform, workload=tiny_classes, strategy="least-waste", num_runs=0)


def test_run_cell_returns_summary(tiny_platform, tiny_classes):
    cell = ExperimentCell(
        platform=tiny_platform,
        workload=tiny_classes,
        strategy="least-waste",
        horizon_days=0.5,
        warmup_days=0.05,
        cooldown_days=0.05,
        num_runs=2,
        base_seed=0,
    )
    summary = run_cell(cell)
    assert summary.n == 2
    assert 0.0 <= summary.mean <= 1.0


def test_run_sweep_structure(tiny_platform, tiny_classes):
    result = run_sweep(
        parameter_name="bandwidth (GB/s)",
        parameter_values=[1.0, 2.0],
        platform_for=lambda bw: tiny_platform.with_bandwidth(bw * 1e9),
        workload_for=lambda platform: tiny_classes,
        strategies=("oblivious-fixed", "least-waste"),
        horizon_days=0.5,
        warmup_days=0.05,
        cooldown_days=0.05,
        num_runs=1,
        base_seed=1,
    )
    assert result.parameter_values == [1.0, 2.0]
    assert set(result.waste) == {"oblivious-fixed", "least-waste"}
    assert len(result.theory) == 2
    assert len(result.series("least-waste")) == 2
    assert result.best_strategy_at(0) in result.strategies
    text = render_sweep(result, title="sweep")
    assert "theoretical-model" in text
    detailed = render_sweep_detailed(result, title="sweep")
    assert "oblivious-fixed" in detailed


def test_run_sweep_through_parallel_runner_matches_serial(tiny_platform, tiny_classes):
    """Smoke test: a 2-worker process sweep equals the serial sweep exactly."""

    def sweep(runner: ParallelRunner | None) -> object:
        return run_sweep(
            parameter_name="bandwidth (GB/s)",
            parameter_values=[1.0, 2.0],
            platform_for=lambda bw: tiny_platform.with_bandwidth(bw * 1e9),
            workload_for=lambda platform: tiny_classes,
            strategies=("oblivious-fixed", "least-waste"),
            horizon_days=0.25,
            warmup_days=0.02,
            cooldown_days=0.02,
            num_runs=2,
            base_seed=5,
            runner=runner,
        )

    serial = sweep(None)
    parallel = sweep(ParallelRunner(backend="process", workers=2))
    # SweepResult is a plain dataclass of exact floats: == compares every
    # per-strategy DistributionSummary and the theory series bit-for-bit.
    assert parallel == serial


def test_run_sweep_requires_values(tiny_platform, tiny_classes):
    with pytest.raises(ConfigurationError):
        run_sweep(
            parameter_name="x",
            parameter_values=[],
            platform_for=lambda v: tiny_platform,
            workload_for=lambda p: tiny_classes,
        )


# -------------------------------------------------------------------- figures
def test_figure1_small_scale_runs_all_strategies():
    config = Figure1Config(
        bandwidths_gbs=(80.0,),
        horizon_days=1.0,
        warmup_days=0.1,
        cooldown_days=0.1,
        num_runs=1,
        base_seed=2,
    )
    result = run_figure1(config)
    assert set(result.waste) == set(STRATEGIES)
    assert len(result.theory) == 1
    text = render_figure1(result)
    assert "Figure 1" in text


def test_figure2_small_scale_runs_subset():
    config = Figure2Config(
        node_mtbf_years=(10.0,),
        bandwidth_gbs=60.0,
        strategies=("ordered-daly", "least-waste"),
        horizon_days=1.0,
        warmup_days=0.1,
        cooldown_days=0.1,
        num_runs=1,
        base_seed=3,
    )
    result = run_figure2(config)
    assert set(result.waste) == {"ordered-daly", "least-waste"}
    assert "Figure 2" in render_figure2(result)


def test_figure3_config_validation():
    with pytest.raises(ConfigurationError):
        Figure3Config(target_efficiency=1.5)
    with pytest.raises(ConfigurationError):
        Figure3Config(search_lo_tbs=5.0, search_hi_tbs=1.0)
    with pytest.raises(ConfigurationError):
        Figure3Config(search_iterations=0)
    assert Figure3Config(target_efficiency=0.8).target_waste_ratio == pytest.approx(0.2)


def test_figure3_bisection_helper():
    # waste(bw) = 1/bw; target 0.25 -> minimal bandwidth 4.
    found = _min_bandwidth(lambda bw: 1.0 / bw, 0.25, lo_tbs=0.5, hi_tbs=64.0, iterations=30)
    assert found == pytest.approx(4.0, rel=1e-3)
    # Lower bound already good enough.
    assert _min_bandwidth(lambda bw: 0.0, 0.25, 0.5, 64.0, 10) == 0.5
    # Even the upper bound is not enough.
    assert _min_bandwidth(lambda bw: 1.0, 0.25, 0.5, 64.0, 10) == 64.0


def test_figure3_theory_only_study():
    config = Figure3Config(node_mtbf_years=(5.0, 25.0), strategies=(), search_iterations=6)
    result = run_figure3(config)
    assert len(result.theory_tbs) == 2
    # A more reliable machine needs less bandwidth to hit the same efficiency.
    assert result.theory_tbs[1] <= result.theory_tbs[0]
    assert "Figure 3" in render_figure3(result)

"""Result export (CSV/JSON) and ASCII plotting."""

from __future__ import annotations

import csv
import io
import json

import pytest

from repro.errors import AnalysisError
from repro.experiments.export import (
    figure3_to_csv,
    figure3_to_rows,
    sweep_to_csv,
    sweep_to_json,
    sweep_to_rows,
    write_text,
)
from repro.experiments.figure3 import Figure3Result
from repro.experiments.plotting import ascii_chart, sweep_chart
from repro.experiments.runner import SweepResult
from repro.stats.summary import summarize


@pytest.fixture
def sweep_result() -> SweepResult:
    result = SweepResult(
        parameter_name="bandwidth (GB/s)",
        parameter_values=[40.0, 160.0],
        strategies=["oblivious-fixed", "least-waste"],
    )
    result.waste["oblivious-fixed"] = [summarize([0.8, 0.82]), summarize([0.3, 0.28])]
    result.waste["least-waste"] = [summarize([0.25, 0.26]), summarize([0.14, 0.15])]
    result.theory = [0.24, 0.13]
    return result


@pytest.fixture
def figure3_result() -> Figure3Result:
    return Figure3Result(
        node_mtbf_years=[5.0, 25.0],
        strategies=["oblivious-fixed", "least-waste"],
        min_bandwidth_tbs={"oblivious-fixed": [20.0, 8.0], "least-waste": [2.0, 1.0]},
        theory_tbs=[1.5, 0.8],
        target_efficiency=0.8,
    )


# --------------------------------------------------------------------- export
def test_sweep_rows_cover_all_cells_and_theory(sweep_result):
    rows = sweep_to_rows(sweep_result)
    # 2 values x (2 strategies + theory) = 6 rows.
    assert len(rows) == 6
    strategies = {row["strategy"] for row in rows}
    assert strategies == {"oblivious-fixed", "least-waste", "theoretical-model"}
    lw_40 = next(r for r in rows if r["strategy"] == "least-waste" and r["value"] == 40.0)
    assert lw_40["mean"] == pytest.approx(0.255)


def test_sweep_csv_parses_back(sweep_result):
    text = sweep_to_csv(sweep_result)
    rows = list(csv.DictReader(io.StringIO(text)))
    assert len(rows) == 6
    assert rows[0]["parameter"] == "bandwidth (GB/s)"


def test_sweep_json_round_trip(sweep_result):
    payload = json.loads(sweep_to_json(sweep_result))
    assert payload["parameter"] == "bandwidth (GB/s)"
    assert payload["values"] == [40.0, 160.0]
    assert len(payload["rows"]) == 6


def test_figure3_rows_and_csv(figure3_result):
    rows = figure3_to_rows(figure3_result)
    assert len(rows) == 6
    assert any(row["strategy"] == "theoretical-model" for row in rows)
    text = figure3_to_csv(figure3_result)
    parsed = list(csv.DictReader(io.StringIO(text)))
    assert parsed[0]["node_mtbf_years"] == "5.0"


def test_write_text_creates_parent_dirs(tmp_path):
    target = write_text(tmp_path / "nested" / "out.csv", "a,b\n1,2\n")
    assert target.read_text() == "a,b\n1,2\n"


# ------------------------------------------------------------------- plotting
def test_ascii_chart_contains_markers_and_axis_labels():
    chart = ascii_chart(
        {"up": [0.0, 1.0, 2.0], "down": [2.0, 1.0, 0.0]},
        x_values=[1.0, 2.0, 3.0],
        width=40,
        height=10,
        y_label="waste",
        x_label="bandwidth",
    )
    assert "waste" in chart
    assert "bandwidth" in chart
    assert "legend:" in chart
    assert "o up" in chart and "x down" in chart
    # The plot body is bounded by the requested width.
    body_lines = [line for line in chart.splitlines() if line.strip().startswith("|")]
    assert body_lines
    assert all(len(line) <= 40 + 14 for line in body_lines)


def test_ascii_chart_handles_flat_series():
    chart = ascii_chart({"flat": [1.0, 1.0]}, x_values=[0.0, 1.0], width=20, height=5)
    assert "flat" in chart


def test_ascii_chart_validation():
    with pytest.raises(AnalysisError):
        ascii_chart({}, x_values=[1.0])
    with pytest.raises(AnalysisError):
        ascii_chart({"a": [1.0, 2.0]}, x_values=[1.0])
    with pytest.raises(AnalysisError):
        ascii_chart({"a": []}, x_values=[])


def test_sweep_chart_includes_every_strategy(sweep_result):
    chart = sweep_chart(sweep_result)
    assert "least-waste" in chart
    assert "theoretical-model" in chart
    assert "waste ratio" in chart

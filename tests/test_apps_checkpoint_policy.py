"""Checkpoint period policies (repro.apps.checkpoint_policy)."""

from __future__ import annotations

import math

import pytest

from repro.apps.checkpoint_policy import DalyPolicy, FixedPolicy, make_policy
from repro.errors import ConfigurationError
from repro.units import HOUR


def test_fixed_policy_returns_constant_period(tiny_platform, tiny_classes):
    policy = FixedPolicy(period_s=2 * HOUR)
    for app in tiny_classes:
        assert policy.period(app, tiny_platform) == pytest.approx(2 * HOUR)
    assert policy.name == "fixed"


def test_fixed_policy_default_is_one_hour(tiny_platform, tiny_classes):
    assert FixedPolicy().period(tiny_classes[0], tiny_platform) == pytest.approx(HOUR)


def test_fixed_policy_rejects_non_positive_period():
    with pytest.raises(ConfigurationError):
        FixedPolicy(period_s=0.0)


def test_daly_policy_matches_formula(tiny_platform, tiny_classes):
    policy = DalyPolicy()
    app = tiny_classes[0]
    commit = app.checkpoint_bytes / tiny_platform.io_bandwidth_bytes_per_s
    mtbf = tiny_platform.node_mtbf_s / app.nodes
    assert policy.period(app, tiny_platform) == pytest.approx(math.sqrt(2 * commit * mtbf))
    assert policy.name == "daly"


def test_daly_policy_scales_with_platform(tiny_platform, tiny_classes):
    policy = DalyPolicy()
    app = tiny_classes[0]
    base = policy.period(app, tiny_platform)
    # Quadrupling the bandwidth halves the commit time -> period / sqrt(2)... no:
    # period scales as sqrt(C), so x4 bandwidth -> period / 2.
    faster = policy.period(app, tiny_platform.with_bandwidth(4 * tiny_platform.io_bandwidth_bytes_per_s))
    assert faster == pytest.approx(base / 2.0)
    # A 4x less reliable node MTBF also halves the period.
    fragile = policy.period(app, tiny_platform.with_node_mtbf(tiny_platform.node_mtbf_s / 4))
    assert fragile == pytest.approx(base / 2.0)


def test_daly_period_shorter_for_larger_jobs(tiny_platform, tiny_classes):
    alpha, beta = tiny_classes  # alpha uses more nodes and a bigger checkpoint
    policy = DalyPolicy()
    # More nodes -> smaller MTBF -> shorter period, all else equal; here the
    # checkpoint is larger too, so simply check both are positive and finite.
    pa = policy.period(alpha, tiny_platform)
    pb = policy.period(beta, tiny_platform)
    assert pa > 0 and pb > 0
    assert math.isfinite(pa) and math.isfinite(pb)


def test_make_policy_factory():
    assert isinstance(make_policy("fixed"), FixedPolicy)
    assert isinstance(make_policy("daly"), DalyPolicy)
    assert make_policy("FIXED", fixed_period_s=120.0).period_s == 120.0
    with pytest.raises(ConfigurationError):
        make_policy("unknown")

"""Application classes (repro.apps.app_class)."""

from __future__ import annotations

import pytest

from repro.apps.app_class import ApplicationClass
from repro.errors import ConfigurationError
from repro.units import GB, HOUR


def test_basic_construction_and_derived_quantities(tiny_platform):
    app = ApplicationClass(
        name="demo",
        nodes=4,
        work_s=2 * HOUR,
        input_bytes=1 * GB,
        output_bytes=2 * GB,
        checkpoint_bytes=4 * GB,
        workload_share=0.5,
    )
    assert app.memory_footprint_bytes(tiny_platform) == pytest.approx(4 * 8 * GB)
    assert app.checkpoint_time(1 * GB) == pytest.approx(4.0)
    assert app.recovery_time(1 * GB) == pytest.approx(4.0)
    assert "demo" in app.describe()


@pytest.mark.parametrize(
    "overrides",
    [
        {"nodes": 0},
        {"work_s": 0.0},
        {"input_bytes": -1.0},
        {"checkpoint_bytes": 0.0},
        {"workload_share": 1.5},
    ],
)
def test_validation(overrides):
    parameters = dict(
        name="bad",
        nodes=2,
        work_s=HOUR,
        input_bytes=GB,
        output_bytes=GB,
        checkpoint_bytes=GB,
        workload_share=0.5,
    )
    parameters.update(overrides)
    with pytest.raises(ConfigurationError):
        ApplicationClass(**parameters)


def test_checkpoint_time_requires_positive_bandwidth(tiny_classes):
    with pytest.raises(ConfigurationError):
        tiny_classes[0].checkpoint_time(0.0)


def test_from_memory_fractions_converts_cores_and_percentages(tiny_platform):
    app = ApplicationClass.from_memory_fractions(
        "conv",
        platform=tiny_platform,
        cores=10,  # 10 cores on 4-core nodes -> 3 nodes
        work_s=HOUR,
        input_fraction=0.10,
        output_fraction=1.0,
        checkpoint_fraction=0.5,
        workload_share=0.25,
    )
    assert app.nodes == 3
    footprint = 3 * tiny_platform.memory_per_node_bytes
    assert app.input_bytes == pytest.approx(0.10 * footprint)
    assert app.output_bytes == pytest.approx(footprint)
    assert app.checkpoint_bytes == pytest.approx(0.5 * footprint)


def test_from_memory_fractions_rejects_oversized_class(tiny_platform):
    with pytest.raises(ConfigurationError):
        ApplicationClass.from_memory_fractions(
            "huge",
            platform=tiny_platform,
            cores=tiny_platform.total_cores * 2,
            work_s=HOUR,
            input_fraction=0.1,
            output_fraction=0.1,
            checkpoint_fraction=0.1,
        )
    with pytest.raises(ConfigurationError):
        ApplicationClass.from_memory_fractions(
            "zero",
            platform=tiny_platform,
            cores=0,
            work_s=HOUR,
            input_fraction=0.1,
            output_fraction=0.1,
            checkpoint_fraction=0.1,
        )


def test_scaled_to_preserves_machine_fraction_and_scales_volumes(tiny_platform):
    app = ApplicationClass(
        name="scaled",
        nodes=4,
        work_s=HOUR,
        input_bytes=1 * GB,
        output_bytes=1 * GB,
        checkpoint_bytes=8 * GB,
        workload_share=0.5,
    )
    bigger = tiny_platform.with_num_nodes(64)  # 4x the nodes, same memory per node
    scaled = app.scaled_to(bigger, tiny_platform)
    assert scaled.nodes == 16
    assert scaled.checkpoint_bytes == pytest.approx(4 * 8 * GB)
    assert scaled.work_s == app.work_s
    assert scaled.workload_share == app.workload_share

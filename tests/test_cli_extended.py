"""Extended CLI commands: export, chart, ablation and trace."""

from __future__ import annotations

import csv
import io

from repro.cli import main


def test_figure1_with_chart_and_csv_export(tmp_path, capsys):
    csv_path = tmp_path / "fig1.csv"
    assert (
        main(
            [
                "figure1",
                "--bandwidths-gbs",
                "80",
                "--num-runs",
                "1",
                "--horizon-days",
                "1.0",
                "--chart",
                "--csv",
                str(csv_path),
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "Figure 1" in out
    assert "legend:" in out  # the ASCII chart
    assert csv_path.exists()
    rows = list(csv.DictReader(io.StringIO(csv_path.read_text())))
    assert any(row["strategy"] == "theoretical-model" for row in rows)


def test_figure3_csv_export(tmp_path, capsys):
    csv_path = tmp_path / "fig3.csv"
    assert (
        main(
            [
                "figure3",
                "--mtbf-years",
                "15",
                "--num-runs",
                "1",
                "--horizon-days",
                "1.0",
                "--csv",
                str(csv_path),
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "Figure 3" in out
    assert csv_path.exists()


def test_ablation_fixed_period_command(capsys):
    assert (
        main(
            [
                "ablation",
                "--study",
                "fixed-period",
                "--periods-hours",
                "1",
                "2",
                "--num-runs",
                "1",
                "--horizon-days",
                "1.0",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "Fixed-period ablation" in out
    assert "P = 1 h" in out and "P = 2 h" in out


def test_ablation_interference_command(capsys):
    assert (
        main(
            [
                "ablation",
                "--study",
                "interference",
                "--alphas",
                "0",
                "1",
                "--num-runs",
                "1",
                "--horizon-days",
                "1.0",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "Interference-model ablation" in out
    assert "linear" in out


def test_trace_command(capsys):
    assert (
        main(
            [
                "trace",
                "--strategy",
                "ordered-fixed",
                "--horizon-days",
                "1.0",
                "--seed",
                "1",
                "--max-events",
                "10",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "timeline" in out
    assert "job-start" in out

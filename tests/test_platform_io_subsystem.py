"""Shared-bandwidth I/O subsystem (repro.platform.io_subsystem)."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.platform.io_subsystem import IOSubsystem
from repro.sim.engine import SimulationEngine


@pytest.fixture
def engine() -> SimulationEngine:
    return SimulationEngine()


@pytest.fixture
def io(engine: SimulationEngine) -> IOSubsystem:
    return IOSubsystem(engine, bandwidth_bytes_per_s=100.0)


def test_single_transfer_runs_at_full_bandwidth(engine, io):
    done: list[float] = []
    io.start(1000.0, weight=1.0, on_complete=lambda t: done.append(engine.now))
    engine.run()
    assert done == [pytest.approx(10.0)]
    assert io.bytes_completed == pytest.approx(1000.0)
    assert io.transfers_completed == 1


def test_two_equal_transfers_share_bandwidth_linearly(engine, io):
    finish: dict[str, float] = {}
    io.start(1000.0, weight=1.0, on_complete=lambda t: finish.setdefault("a", engine.now), label="a")
    io.start(1000.0, weight=1.0, on_complete=lambda t: finish.setdefault("b", engine.now), label="b")
    engine.run()
    # Both take twice as long as they would alone.
    assert finish["a"] == pytest.approx(20.0)
    assert finish["b"] == pytest.approx(20.0)


def test_weighted_sharing_is_proportional(engine, io):
    finish: dict[str, float] = {}
    # Weight 3 gets 75 B/s, weight 1 gets 25 B/s while both are active.
    io.start(300.0, weight=3.0, on_complete=lambda t: finish.setdefault("big", engine.now))
    io.start(300.0, weight=1.0, on_complete=lambda t: finish.setdefault("small", engine.now))
    engine.run()
    # Big: 300 B at 75 B/s -> 4 s.  Small: 4 s at 25 B/s = 100 B, then 200 B
    # alone at 100 B/s -> 2 s more.
    assert finish["big"] == pytest.approx(4.0)
    assert finish["small"] == pytest.approx(6.0)


def test_later_arrival_slows_down_existing_transfer(engine, io):
    finish: dict[str, float] = {}
    io.start(1000.0, weight=1.0, on_complete=lambda t: finish.setdefault("first", engine.now))
    engine.schedule(5.0, lambda: io.start(250.0, weight=1.0, on_complete=lambda t: finish.setdefault("second", engine.now)))
    engine.run()
    # First: 500 B alone (5 s), then shares 50 B/s; the second (250 B) takes
    # 5 s of shared service, finishing at t=10; first finishes its remaining
    # 250 B alone at 100 B/s by t=12.5.
    assert finish["second"] == pytest.approx(10.0)
    assert finish["first"] == pytest.approx(12.5)


def test_aggregate_throughput_is_conserved(engine, io):
    finish: list[float] = []
    for _ in range(5):
        io.start(200.0, weight=1.0, on_complete=lambda t: finish.append(engine.now))
    engine.run()
    # 5 x 200 B at 100 B/s aggregate -> everything done at t=10.
    assert all(t == pytest.approx(10.0) for t in finish)
    assert io.busy_seconds == pytest.approx(10.0)


def test_abort_releases_bandwidth(engine, io):
    finish: dict[str, float] = {}
    victim = io.start(1000.0, weight=1.0, on_complete=lambda t: finish.setdefault("victim", engine.now))
    io.start(1000.0, weight=1.0, on_complete=lambda t: finish.setdefault("survivor", engine.now))
    engine.schedule(5.0, lambda: io.abort(victim))
    engine.run()
    # Survivor: 250 B in the first 5 s (shared), then 750 B alone -> 12.5 s.
    assert "victim" not in finish
    assert finish["survivor"] == pytest.approx(12.5)
    assert victim.aborted
    assert not victim.done


def test_zero_volume_transfer_completes_immediately(engine, io):
    done: list[float] = []
    engine.schedule(3.0, lambda: io.start(0.0, weight=1.0, on_complete=lambda t: done.append(engine.now)))
    engine.run()
    assert done == [pytest.approx(3.0)]


def test_duration_alone(io):
    assert io.duration_alone(250.0) == pytest.approx(2.5)
    with pytest.raises(SimulationError):
        io.duration_alone(-1.0)


def test_max_concurrency_tracking(engine, io):
    for _ in range(4):
        io.start(100.0, weight=1.0)
    engine.run()
    assert io.max_concurrency == 4


def test_invalid_parameters(engine, io):
    with pytest.raises(SimulationError):
        IOSubsystem(engine, bandwidth_bytes_per_s=0.0)
    with pytest.raises(SimulationError):
        io.start(-1.0, weight=1.0)
    with pytest.raises(SimulationError):
        io.start(10.0, weight=0.0)


def test_transfer_bookkeeping_fields(engine, io):
    transfer = io.start(100.0, weight=2.0, owner="job", label="checkpoint")
    assert transfer.owner == "job"
    assert transfer.label == "checkpoint"
    assert transfer.active
    engine.run()
    assert transfer.done
    assert transfer.finished_at == pytest.approx(1.0)
    assert transfer.remaining_bytes == 0.0

"""Workload (job-mix) generation (repro.workloads.generator)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.app_class import ApplicationClass
from repro.errors import ConfigurationError
from repro.units import DAY, GB, HOUR
from repro.workloads.generator import WorkloadSpec, generate_jobs


def make_spec(tiny_classes, **overrides) -> WorkloadSpec:
    parameters = dict(classes=tuple(tiny_classes), min_duration_s=2 * DAY, share_tolerance=0.02)
    parameters.update(overrides)
    return WorkloadSpec(**parameters)


def test_spec_validation(tiny_classes):
    with pytest.raises(ConfigurationError):
        WorkloadSpec(classes=())
    with pytest.raises(ConfigurationError):
        make_spec(tiny_classes, min_duration_s=0.0)
    with pytest.raises(ConfigurationError):
        make_spec(tiny_classes, share_tolerance=0.0)
    with pytest.raises(ConfigurationError):
        make_spec(tiny_classes, work_time_jitter=1.0)
    with pytest.raises(ConfigurationError):
        make_spec(tiny_classes, headroom=0.5)


def test_spec_requires_positive_shares(tiny_classes):
    zero_share = [
        ApplicationClass(
            name="z",
            nodes=2,
            work_s=HOUR,
            input_bytes=GB,
            output_bytes=GB,
            checkpoint_bytes=GB,
            workload_share=0.0,
        )
    ]
    with pytest.raises(ConfigurationError):
        WorkloadSpec(classes=tuple(zero_share))


def test_normalized_shares(tiny_classes):
    spec = make_spec(tiny_classes)
    shares = spec.normalized_shares
    assert shares.sum() == pytest.approx(1.0)
    assert shares[0] == pytest.approx(0.6)


def test_generated_jobs_match_share_targets_and_duration(tiny_platform, tiny_classes):
    spec = make_spec(tiny_classes, min_duration_s=3 * DAY, share_tolerance=0.02)
    rng = np.random.default_rng(0)
    jobs = generate_jobs(spec, tiny_platform, rng)
    assert jobs

    node_seconds = {app.name: 0.0 for app in tiny_classes}
    for job in jobs:
        node_seconds[job.app_class.name] += job.total_work_s * job.nodes
    total = sum(node_seconds.values())
    # Enough work to keep the platform busy for the requested duration.
    assert total >= tiny_platform.num_nodes * spec.min_duration_s
    # Shares within tolerance.
    for app, target in zip(tiny_classes, spec.normalized_shares):
        assert node_seconds[app.name] / total == pytest.approx(target, abs=spec.share_tolerance + 1e-9)


def test_work_times_are_jittered_within_bounds(tiny_platform, tiny_classes):
    spec = make_spec(tiny_classes, work_time_jitter=0.2)
    jobs = generate_jobs(spec, tiny_platform, np.random.default_rng(1))
    for job in jobs:
        nominal = job.app_class.work_s
        assert 0.8 * nominal - 1e-6 <= job.total_work_s <= 1.2 * nominal + 1e-6
    # With jitter disabled, work times are exactly the nominal ones.
    exact = generate_jobs(make_spec(tiny_classes, work_time_jitter=0.0), tiny_platform, np.random.default_rng(1))
    assert all(job.total_work_s == job.app_class.work_s for job in exact)


def test_priorities_follow_shuffled_arrival_order(tiny_platform, tiny_classes):
    jobs = generate_jobs(make_spec(tiny_classes), tiny_platform, np.random.default_rng(2))
    priorities = sorted(job.priority for job in jobs)
    assert priorities == list(range(len(jobs)))
    assert all(job.submit_time == 0.0 for job in jobs)


def test_generation_is_reproducible(tiny_platform, tiny_classes):
    spec = make_spec(tiny_classes)
    a = generate_jobs(spec, tiny_platform, np.random.default_rng(7))
    b = generate_jobs(spec, tiny_platform, np.random.default_rng(7))
    assert [(j.app_class.name, j.total_work_s, j.priority) for j in a] == [
        (j.app_class.name, j.total_work_s, j.priority) for j in b
    ]


def test_oversized_class_rejected(tiny_platform, tiny_classes):
    huge = ApplicationClass(
        name="huge",
        nodes=tiny_platform.num_nodes + 1,
        work_s=HOUR,
        input_bytes=GB,
        output_bytes=GB,
        checkpoint_bytes=GB,
        workload_share=1.0,
    )
    spec = WorkloadSpec(classes=(huge,), min_duration_s=DAY)
    with pytest.raises(ConfigurationError):
        generate_jobs(spec, tiny_platform, np.random.default_rng(0))


def test_max_jobs_guard(tiny_platform, tiny_classes):
    spec = make_spec(tiny_classes, max_jobs=2, min_duration_s=30 * DAY)
    with pytest.raises(ConfigurationError):
        generate_jobs(spec, tiny_platform, np.random.default_rng(0))

"""Least-Waste candidate scoring, Eq. (1)/(2) (repro.core.least_waste)."""

from __future__ import annotations

import pytest

from repro.core.least_waste import (
    CkptCandidate,
    IOCandidate,
    expected_waste,
    select_candidate,
)
from repro.errors import AnalysisError


def test_io_candidate_validation():
    with pytest.raises(AnalysisError):
        IOCandidate(key="a", duration=0.0, nodes=10.0, waited=0.0)
    with pytest.raises(AnalysisError):
        IOCandidate(key="a", duration=1.0, nodes=0.0, waited=0.0)
    with pytest.raises(AnalysisError):
        IOCandidate(key="a", duration=1.0, nodes=1.0, waited=-1.0)


def test_ckpt_candidate_validation():
    with pytest.raises(AnalysisError):
        CkptCandidate(key="a", duration=0.0, nodes=1.0, since_last_checkpoint=0.0, recovery_time=0.0)
    with pytest.raises(AnalysisError):
        CkptCandidate(key="a", duration=1.0, nodes=1.0, since_last_checkpoint=-1.0, recovery_time=0.0)
    with pytest.raises(AnalysisError):
        CkptCandidate(key="a", duration=1.0, nodes=1.0, since_last_checkpoint=0.0, recovery_time=-1.0)


def test_expected_waste_matches_equation_1():
    # Selected: an I/O candidate of duration v; others: one I/O and one
    # checkpoint candidate.  Hand-evaluate Eq. (1).
    mu_ind = 1e6
    selected = IOCandidate(key="io1", duration=100.0, nodes=10.0, waited=5.0)
    other_io = IOCandidate(key="io2", duration=50.0, nodes=20.0, waited=30.0)
    ckpt = CkptCandidate(
        key="ck", duration=80.0, nodes=40.0, since_last_checkpoint=600.0, recovery_time=80.0
    )
    waste = expected_waste(selected, [selected, other_io, ckpt], mu_ind)
    expected_io_term = 20.0 * (30.0 + 100.0)
    expected_ckpt_term = (100.0 / mu_ind) * 40.0**2 * (80.0 + 600.0 + 100.0 / 2.0)
    assert waste == pytest.approx(expected_io_term + expected_ckpt_term)


def test_expected_waste_matches_equation_2():
    # Selected: a checkpoint candidate; the transfer lasts its commit time C.
    mu_ind = 1e6
    selected = CkptCandidate(
        key="ck1", duration=200.0, nodes=10.0, since_last_checkpoint=100.0, recovery_time=200.0
    )
    other_io = IOCandidate(key="io", duration=50.0, nodes=5.0, waited=10.0)
    other_ck = CkptCandidate(
        key="ck2", duration=60.0, nodes=8.0, since_last_checkpoint=400.0, recovery_time=60.0
    )
    waste = expected_waste(selected, [selected, other_io, other_ck], mu_ind)
    expected_value = 5.0 * (10.0 + 200.0) + (200.0 / mu_ind) * 64.0 * (60.0 + 400.0 + 100.0)
    assert waste == pytest.approx(expected_value)


def test_selected_candidate_excluded_from_its_own_waste():
    selected = IOCandidate(key="only", duration=10.0, nodes=4.0, waited=0.0)
    assert expected_waste(selected, [selected], 1e6) == 0.0


def test_select_candidate_prefers_small_transfer_blocking_many_nodes():
    # A short transfer that unblocks a large idle job should win over a long
    # transfer that unblocks a small job.
    mu_ind = 1e7
    short_big = IOCandidate(key="short-big", duration=10.0, nodes=1000.0, waited=100.0)
    long_small = IOCandidate(key="long-small", duration=1000.0, nodes=10.0, waited=100.0)
    best, waste = select_candidate([long_small, short_big], mu_ind)
    assert best is short_big
    assert waste >= 0.0


def test_select_candidate_prefers_io_over_checkpoint_when_failures_rare():
    # With a huge MTBF, delaying a checkpoint costs almost nothing while an
    # idle job wastes real node-seconds.
    mu_ind = 1e12
    idle_io = IOCandidate(key="io", duration=100.0, nodes=50.0, waited=10.0)
    ckpt = CkptCandidate(
        key="ck", duration=100.0, nodes=50.0, since_last_checkpoint=1000.0, recovery_time=100.0
    )
    best, _ = select_candidate([ckpt, idle_io], mu_ind)
    assert best is idle_io


def test_select_candidate_prefers_exposed_checkpoint_when_failures_frequent():
    # With a small MTBF and a hugely exposed checkpoint candidate, serving the
    # other candidates first would risk a lot of lost work.
    mu_ind = 1e4
    ckpt = CkptCandidate(
        key="ck", duration=50.0, nodes=100.0, since_last_checkpoint=50_000.0, recovery_time=50.0
    )
    io = IOCandidate(key="io", duration=50.0, nodes=1.0, waited=1.0)
    best, _ = select_candidate([io, ckpt], mu_ind)
    assert best is ckpt


def test_select_candidate_fcfs_tie_break():
    a = IOCandidate(key="a", duration=10.0, nodes=5.0, waited=3.0)
    b = IOCandidate(key="b", duration=10.0, nodes=5.0, waited=3.0)
    best, _ = select_candidate([a, b], 1e6)
    assert best is a


def test_select_candidate_empty_pool_rejected():
    with pytest.raises(AnalysisError):
        select_candidate([], 1e6)


def test_expected_waste_requires_positive_mtbf():
    candidate = IOCandidate(key="x", duration=1.0, nodes=1.0, waited=0.0)
    with pytest.raises(AnalysisError):
        expected_waste(candidate, [candidate], 0.0)

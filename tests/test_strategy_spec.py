"""Parameterized strategy specs (repro.iosched.spec) and the open registry.

Three concerns live here:

* **Round-tripping** — ``parse -> format -> parse`` is the identity on the
  canonical form, under whitespace/case noise and hypothesis-generated
  parameter values.
* **Cache-key backward compatibility** — the seven legacy names must keep
  the exact digests and on-disk cache paths they had before the spec
  redesign (pinned below from the seed behaviour), with ``DIGEST_VERSION``
  still ``"2"``.
* **End-to-end openness** — a parameterized spec and a test-registered
  custom strategy both run through ``CampaignRunner`` on the serial,
  process and spool backends with bit-identical results.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.checkpoint_policy import DalyPolicy, FixedPolicy
from repro.errors import ConfigurationError
from repro.exec.cache import ResultCache
from repro.exec.digest import DIGEST_VERSION, config_digest
from repro.exec.runner import ParallelRunner
from repro.iosched.ordered import OrderedScheduler
from repro.iosched.registry import (
    STRATEGIES,
    Strategy,
    StrategySpec,
    canonical_strategy,
    make_strategy,
    parse_strategy,
    register_strategy,
    resolved_strategy_spec,
    strategy_kinds,
)
from repro.scenarios.presets import mini_apex_workload, mini_cielo_platform
from repro.scenarios.runner import CampaignRunner
from repro.scenarios.spec import Scenario
from repro.simulation.config import SimulationConfig
from repro.units import DAY


# ---------------------------------------------------------------- round-trip
@pytest.mark.parametrize(
    ("text", "canonical"),
    [
        ("ordered", "ordered-daly"),
        ("ordered[policy=daly]", "ordered-daly"),
        ("ordered[policy=fixed]", "ordered-fixed"),
        ("Ordered[Policy=FIXED]", "ordered-fixed"),
        ("  orderednb [ policy = fixed , period_s = 1800 ]  ".replace(" [", "["),
         "orderednb[policy=fixed,period_s=1800]"),
        ("ordered[period_s=1800.0,policy=fixed]", "ordered[policy=fixed,period_s=1800]"),
        ("least-waste", "least-waste"),
        ("least-waste[mtbf_bias=1]", "least-waste"),
        ("least-waste[mtbf_bias=2.5]", "least-waste[mtbf_bias=2.5]"),
        ("LEAST-WASTE[policy=fixed,period_s=900]", "least-waste[policy=fixed,period_s=900]"),
    ],
)
def test_canonicalisation(text, canonical):
    assert canonical_strategy(text) == canonical
    # The canonical form is a fixed point of parse -> format.
    assert canonical_strategy(canonical) == canonical


def test_parse_format_parse_is_identity_on_specs():
    for text in ("ordered[policy=fixed,period_s=123.456]", *STRATEGIES):
        spec = parse_strategy(text)
        assert parse_strategy(spec.canonical) == spec


def test_legacy_names_are_fixed_points():
    for name in STRATEGIES:
        assert canonical_strategy(name) == name
        assert canonical_strategy(name.upper()) == name
        assert canonical_strategy(f"  {name}  ") == name


@settings(max_examples=60, deadline=None)
@given(
    period=st.floats(min_value=1e-6, max_value=1e9, allow_nan=False, allow_infinity=False),
    bias=st.floats(min_value=1e-6, max_value=1e6, allow_nan=False, allow_infinity=False),
)
def test_roundtrip_of_hypothesis_generated_params(period, bias):
    spec = StrategySpec(
        "least-waste", (("policy", "fixed"), ("period_s", period), ("mtbf_bias", bias))
    )
    reparsed = parse_strategy(spec.canonical)
    # Formatting uses shortest-exact repr, so values survive bit-exactly.
    assert reparsed == spec
    assert reparsed.get("period_s") == period
    assert reparsed.get("mtbf_bias") == bias


def test_spec_params_accept_mapping_and_normalise_order():
    a = StrategySpec("ordered", {"period_s": 1800, "policy": "fixed"})
    b = StrategySpec("ordered", (("policy", "fixed"), ("period_s", 1800.0)))
    assert a == b
    assert a.canonical == "ordered[policy=fixed,period_s=1800]"


def test_with_params_merges():
    base = parse_strategy("ordered[policy=fixed]")
    tuned = base.with_params(period_s=900)
    assert tuned.canonical == "ordered[policy=fixed,period_s=900]"
    assert base.canonical == "ordered-fixed"  # original untouched


# ---------------------------------------------------------------- validation
@pytest.mark.parametrize(
    "bad",
    [
        "ordered[policy=fixed",          # missing closing bracket
        "ordered]policy=fixed[",         # stray bracket
        "ordered[policy]",               # missing =value
        "ordered[=fixed]",               # missing key
        "ordered[policy=fixed]x",        # trailing garbage
        "[policy=fixed]",                # missing kind
        "ordered[policy=fixed,policy=daly]",  # duplicate key
        "ordered[policy=sometimes]",     # outside choices
        "ordered[policy=fixed,period_s=abc]",  # not a float
        "ordered[policy=fixed,period_s=-5]",   # not positive
        "ordered[period_s=1800]",        # period without policy=fixed
        "round-robin",                   # unknown kind
    ],
)
def test_malformed_specs_raise_configuration_error(bad):
    with pytest.raises(ConfigurationError):
        parse_strategy(bad)


def test_unknown_parameter_suggests_close_match():
    with pytest.raises(ConfigurationError) as excinfo:
        parse_strategy("ordered[polcy=fixed]")
    assert "did you mean 'policy'?" in str(excinfo.value)


def test_simulation_config_and_registry_share_one_validator():
    """SimulationConfig no longer re-implements unknown-strategy errors: the
    message (did-you-mean included) is the registry's own."""
    platform = mini_cielo_platform()
    workload = tuple(mini_apex_workload(platform))
    with pytest.raises(ConfigurationError) as from_config:
        SimulationConfig(platform=platform, classes=workload, strategy="ordered-dally")
    with pytest.raises(ConfigurationError) as from_registry:
        make_strategy("ordered-dally")
    assert str(from_config.value) == str(from_registry.value)
    assert "did you mean 'ordered-daly'?" in str(from_config.value)


def test_scenario_normalises_and_prefixes_errors():
    platform = mini_cielo_platform()
    workload = tuple(mini_apex_workload(platform))
    scenario = Scenario(
        name="s", platform=platform, workload=workload,
        strategies=("Ordered[policy=fixed]", "least-waste"),
    )
    assert scenario.strategies == ("ordered-fixed", "least-waste")
    with pytest.raises(ConfigurationError, match="scenario 's'"):
        Scenario(name="s", platform=platform, workload=workload, strategies=("nope",))
    with pytest.raises(ConfigurationError, match="twice"):
        Scenario(
            name="s", platform=platform, workload=workload,
            strategies=("ordered-fixed", "ordered[policy=fixed]"),
        )


# ------------------------------------------------- cache-key backward compat
#: Config digests of the seven legacy strategies on the golden mini-Cielo
#: configuration, captured from the seed implementation (pre-StrategySpec).
#: The spec redesign must keep these byte-identical — a drift here silently
#: orphans every existing on-disk cache entry.
SEED_DIGESTS = {
    "oblivious-fixed": "ec4c84b7168ddd2683f7551514abd6634abf50d64a7c573d1a484e41242e8aa5",
    "oblivious-daly": "b0b803debb7817177763d4b967456742652ba818d91a05097eaabe12b47a8c53",
    "ordered-fixed": "681b01e3ab50a5018c54b7a3f306228e5d9f170c3595618c7791fe10446fe750",
    "ordered-daly": "a0e60c1ef496027575593ed2ad77b7bd887e5d2bfde4a8cab70f1953ba8e22ab",
    "orderednb-fixed": "6d8e2c5483bbd8d41e5f5cb908116f9393eb45bb12b4541d361a67a249fe66ff",
    "orderednb-daly": "aacf52ab74ca1c9778db7172a4239c63fa224f29b539a28115fbf07e819d9618",
    "least-waste": "9dbdeb51baf946e90d8609f612cbeebe91a57aa7df634e6cc673d9097e5102ae",
}


def _golden_config(strategy: str) -> SimulationConfig:
    platform = mini_cielo_platform()
    return SimulationConfig(
        platform=platform,
        classes=tuple(mini_apex_workload(platform)),
        strategy=strategy,
        horizon_s=0.5 * DAY,
        warmup_s=0.0625 * DAY,
        cooldown_s=0.0625 * DAY,
        seed=2018,
    )


def test_digest_version_is_unchanged_by_the_spec_redesign():
    assert DIGEST_VERSION == "2"


@pytest.mark.parametrize("name", sorted(SEED_DIGESTS))
def test_legacy_names_keep_seed_digests_and_cache_paths(name, tmp_path):
    config = _golden_config(name)
    digest = config_digest(config)
    assert digest == SEED_DIGESTS[name]
    # The full cache path (shard/digest/strategy/seed) is byte-identical too.
    cache = ResultCache(tmp_path)
    path = cache._entry_path(digest, config.strategy, 7)
    assert path.relative_to(cache.root).as_posix() == (
        f"{SEED_DIGESTS[name][:2]}/{SEED_DIGESTS[name]}/{name}/7.json"
    )


def test_legacy_spellings_share_the_legacy_digest():
    """`ordered[policy=fixed]` IS ordered-fixed, cache entries included."""
    assert config_digest(_golden_config("ordered[policy=fixed]")) == SEED_DIGESTS["ordered-fixed"]
    assert config_digest(_golden_config("Ordered-Fixed")) == SEED_DIGESTS["ordered-fixed"]


def test_parameterized_specs_get_their_own_digest():
    explicit = _golden_config("ordered[policy=fixed,period_s=1800]")
    assert explicit.strategy == "ordered[policy=fixed,period_s=1800]"
    assert config_digest(explicit) not in SEED_DIGESTS.values()


# ------------------------------------------------------------- end-to-end
class LifoScheduler(OrderedScheduler):
    """Test-only custom strategy: serve the *newest* pending request."""

    name = "lifo"

    def _select_next(self, pending):
        return pending[-1]


def _lifo_factory(spec: StrategySpec, *, fixed_period_s: float) -> Strategy:
    return Strategy(
        name=spec.canonical,
        scheduler_cls=LifoScheduler,
        policy=DalyPolicy(),
        label="LIFO",
    )


# Registered at import so forked process-pool workers inherit it.
register_strategy(
    "lifo", _lifo_factory, description="test-only LIFO token", replace_existing=True
)


def test_registered_strategy_appears_in_kinds_and_builds():
    assert "lifo" in strategy_kinds()
    strategy = make_strategy("lifo")
    assert strategy.scheduler_cls is LifoScheduler
    assert canonical_strategy("LIFO") == "lifo"


def test_register_strategy_rejects_silent_overrides_and_bad_names():
    with pytest.raises(ConfigurationError, match="already registered"):
        register_strategy("lifo", _lifo_factory)
    with pytest.raises(ConfigurationError, match="already registered"):
        register_strategy("ordered-fixed", _lifo_factory)  # legacy alias shadowing
    with pytest.raises(ConfigurationError):
        register_strategy("bad kind", _lifo_factory)
    with pytest.raises(ConfigurationError):
        register_strategy("bad[kind]", _lifo_factory)


def _campaign_scenario() -> Scenario:
    platform = mini_cielo_platform()
    return Scenario(
        name="spec-e2e",
        platform=platform,
        workload=tuple(mini_apex_workload(platform)),
        strategies=("ordered[policy=fixed,period_s=1800]", "lifo"),
        num_runs=2,
        base_seed=42,
        horizon_days=0.25,
        warmup_days=0.03125,
        cooldown_days=0.03125,
    )


def test_parameterized_and_custom_strategies_run_on_all_backends(tmp_path, spool_workers):
    """Acceptance: the new specs flow end-to-end through every backend with
    bit-identical results (TaskSpecs carry the canonical string as JSON)."""
    scenario = _campaign_scenario()

    with CampaignRunner(runner=ParallelRunner()) as serial:
        reference = serial.run_scenario(scenario)

    with CampaignRunner(runner=ParallelRunner(backend="process", workers=2)) as process:
        via_process = process.run_scenario(scenario)
    assert via_process.summaries == reference.summaries

    spool_dir, cache_dir = tmp_path / "spool", tmp_path / "cache"
    with spool_workers(spool_dir, cache_dir, count=2):
        runner = ParallelRunner(
            backend="spool", spool_dir=spool_dir, cache_dir=cache_dir,
            spool_poll_s=0.01, spool_timeout_s=120.0,
        )
        with CampaignRunner(runner=runner) as spool:
            via_spool = spool.run_scenario(scenario)
    assert via_spool.summaries == reference.summaries

    # The parameterized cell cached under its canonical spec string.
    config = scenario.config("ordered[policy=fixed,period_s=1800]")
    cache = ResultCache(cache_dir)
    digest = config_digest(config)
    assert cache.probe(digest, config.strategy, _first_seed(scenario)) is not None


def _first_seed(scenario: Scenario) -> int:
    from repro.stats.montecarlo import derive_seeds

    return derive_seeds(scenario.base_seed, 1)[0]


def test_resolved_spec_distinguishes_period_variants():
    assert resolved_strategy_spec("ordered-fixed", fixed_period_s=1800.0) == (
        "ordered[policy=fixed,period_s=1800]"
    )
    assert resolved_strategy_spec("ordered-fixed", fixed_period_s=3600.0) == (
        "ordered[policy=fixed,period_s=3600]"
    )
    assert resolved_strategy_spec("ordered-daly") == "ordered[policy=daly]"
    assert resolved_strategy_spec("lifo") == "lifo[policy=daly]"


def test_non_finite_param_values_are_rejected():
    for bad in ("nan", "inf", "-inf", float("nan"), float("inf")):
        with pytest.raises(ConfigurationError):
            parse_strategy(f"ordered[policy=fixed,period_s={bad}]")
        with pytest.raises(ConfigurationError):
            StrategySpec("least-waste", (("mtbf_bias", bad),))


def test_run_sweep_rejects_duplicate_strategies_after_normalisation():
    from repro.experiments.runner import run_sweep

    platform = mini_cielo_platform()
    with pytest.raises(ConfigurationError, match="twice"):
        run_sweep(
            parameter_name="bw",
            parameter_values=[1.0],
            platform_for=lambda _: platform,
            workload_for=lambda p: mini_apex_workload(p),
            strategies=["ordered", "ordered-daly"],  # same strategy, two spellings
            num_runs=1,
            horizon_days=0.25,
        )

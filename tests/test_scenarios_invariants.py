"""Property-based accounting invariants over arbitrary scenario configs.

For *any* scenario a campaign can produce — random bandwidth, MTBF,
failure-model shape, horizon, strategy and seed — a simulated
:class:`SimulationResult` must satisfy the accounting contract: every
category is non-negative, the categories sum exactly to the measured
node-seconds (useful + waste), that total never exceeds the allocated
node-seconds, and all waste/efficiency fractions lie in [0, 1].
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.app_class import ApplicationClass
from repro.platform.failures import FailureModel
from repro.platform.spec import PlatformSpec
from repro.scenarios.runner import CampaignRunner
from repro.scenarios.spec import Scenario
from repro.simulation.simulator import Simulation
from repro.units import DAY, GB, HOUR

# One shared toy machine shape; the axes below override its knobs.
_PLATFORM = PlatformSpec(
    name="prop",
    num_nodes=24,
    cores_per_node=4,
    memory_per_node_bytes=8.0 * GB,
    io_bandwidth_bytes_per_s=1.0 * GB,
    node_mtbf_s=30.0 * DAY,
)

_WORKLOAD = (
    ApplicationClass(
        name="big",
        nodes=8,
        work_s=3.0 * HOUR,
        input_bytes=4.0 * GB,
        output_bytes=8.0 * GB,
        checkpoint_bytes=16.0 * GB,
        workload_share=0.7,
    ),
    ApplicationClass(
        name="small",
        nodes=3,
        work_s=1.0 * HOUR,
        input_bytes=1.0 * GB,
        output_bytes=2.0 * GB,
        checkpoint_bytes=4.0 * GB,
        workload_share=0.3,
    ),
)

failure_models = st.one_of(
    st.just(FailureModel()),
    st.floats(min_value=0.4, max_value=3.0).map(
        lambda k: FailureModel(kind="weibull", shape=round(k, 2))
    ),
)

scenarios = st.builds(
    lambda bandwidth, mtbf_days, horizon_h, strategy, model, seed: Scenario(
        name="prop",
        platform=_PLATFORM.with_bandwidth(bandwidth * GB).with_node_mtbf(mtbf_days * DAY),
        workload=_WORKLOAD,
        strategies=(strategy,),
        failure_model=model,
        num_runs=1,
        base_seed=seed,
        horizon_days=horizon_h / 24.0,
        warmup_days=horizon_h / 240.0,
        cooldown_days=horizon_h / 240.0,
    ),
    bandwidth=st.floats(min_value=0.1, max_value=8.0),
    mtbf_days=st.floats(min_value=2.0, max_value=200.0),
    horizon_h=st.floats(min_value=6.0, max_value=30.0),
    strategy=st.sampled_from(
        ["oblivious-fixed", "oblivious-daly", "ordered-daly", "orderednb-fixed", "least-waste"]
    ),
    model=failure_models,
    seed=st.integers(min_value=0, max_value=2**31),
)


def _check_result(result) -> None:
    b = result.breakdown
    categories = {
        "compute": b.compute,
        "base_io": b.base_io,
        "io_delay": b.io_delay,
        "checkpoint": b.checkpoint,
        "checkpoint_wait": b.checkpoint_wait,
        "recovery": b.recovery,
        "lost_work": b.lost_work,
    }
    # Every accounting category is (numerically) non-negative.
    for name, value in categories.items():
        assert value >= -1e-6, f"category {name} is negative: {value}"
    # Categories sum exactly to the measured node-seconds (useful + waste)...
    total = sum(categories.values())
    assert total == pytest.approx(b.useful + b.waste, rel=1e-9, abs=1e-6)
    # ...which never exceed what was actually allocated.
    assert b.useful + b.waste <= b.allocated + 1e-6
    # All reported fractions are well-formed.
    assert 0.0 <= result.waste_ratio <= 1.0
    assert 0.0 <= result.efficiency <= 1.0
    assert result.waste_ratio == pytest.approx(1.0 - result.efficiency, abs=1e-12)
    assert 0.0 <= b.waste_over_useful or b.useful <= 0.0
    assert result.node_utilization >= 0.0


@settings(max_examples=15, deadline=None)
@given(scenario=scenarios)
def test_any_scenario_config_satisfies_the_accounting_contract(scenario):
    for config in scenario.configs():
        _check_result(Simulation(config).run())


@settings(max_examples=8, deadline=None)
@given(scenario=scenarios)
def test_campaign_summaries_stay_inside_the_unit_interval(scenario):
    outcome = CampaignRunner().run_scenario(scenario)
    for summary in outcome.summaries.values():
        assert 0.0 <= summary.minimum <= summary.mean <= summary.maximum <= 1.0


@settings(max_examples=10, deadline=None)
@given(scenario=scenarios)
def test_detail_run_is_reproducible_for_any_scenario(scenario):
    runner = CampaignRunner()
    strategy = scenario.strategies[0]
    a = runner.detail(scenario, strategy)
    b = runner.detail(scenario, strategy)
    assert a == b  # frozen dataclasses: exact, field-by-field equality

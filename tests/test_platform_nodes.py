"""Node pool allocation (repro.platform.nodes)."""

from __future__ import annotations

import pytest

from repro.errors import SchedulingError
from repro.platform.nodes import ArrayNodePool, NodePool


@pytest.fixture(params=[NodePool, ArrayNodePool], ids=["reference", "array"])
def pool_cls(request):
    """Both pool implementations must satisfy the same contract."""
    return request.param


def test_initial_state(pool_cls):
    pool = pool_cls(8)
    assert pool.num_nodes == 8
    assert pool.num_free == 8
    assert pool.num_allocated == 0
    assert pool.utilization == 0.0


def test_allocate_lowest_numbered_nodes_first(pool_cls):
    pool = pool_cls(8)
    owner = object()
    assert pool.allocate(3, owner) == [0, 1, 2]
    assert pool.num_free == 5
    assert pool.utilization == pytest.approx(3 / 8)


def test_owner_tracking_and_release(pool_cls):
    pool = pool_cls(8)
    a, b = object(), object()
    nodes_a = pool.allocate(2, a)
    nodes_b = pool.allocate(3, b)
    assert pool.owner_of(nodes_a[0]) is a
    assert pool.owner_of(nodes_b[0]) is b
    assert sorted(pool.nodes_of(b)) == nodes_b
    pool.release(nodes_a)
    assert pool.owner_of(nodes_a[0]) is None
    assert pool.num_free == 8 - 3


def test_release_owner_releases_everything_and_reports_it(pool_cls):
    pool = pool_cls(8)
    owner = object()
    nodes = pool.allocate(4, owner)
    released = pool.release_owner(owner)
    assert sorted(released) == nodes
    assert pool.num_free == 8
    # Releasing an owner with no nodes is a no-op.
    assert pool.release_owner(owner) == []


def test_released_nodes_are_reused(pool_cls):
    pool = pool_cls(4)
    a = object()
    nodes = pool.allocate(4, a)
    pool.release(nodes[:2])
    b = object()
    assert pool.allocate(2, b) == nodes[:2]


def test_cannot_overallocate(pool_cls):
    pool = pool_cls(4)
    pool.allocate(3, object())
    assert not pool.can_allocate(2)
    assert pool.can_allocate(1)
    with pytest.raises(SchedulingError):
        pool.allocate(2, object())


def test_invalid_operations_rejected(pool_cls):
    pool = pool_cls(4)
    with pytest.raises(SchedulingError):
        pool.allocate(0, object())
    with pytest.raises(SchedulingError):
        pool.release([0])  # node 0 is already free
    with pytest.raises(SchedulingError):
        pool.owner_of(99)
    with pytest.raises(SchedulingError):
        pool_cls(0)


def test_can_allocate_rejects_non_positive_counts(pool_cls):
    pool = pool_cls(4)
    assert not pool.can_allocate(0)
    assert not pool.can_allocate(-2)

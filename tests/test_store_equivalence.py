"""Store-choice invisibility: campaigns cannot tell the backends apart.

The acceptance bar of the PR: the same campaign (same seeds) executed
through a filesystem store and through a SQLite store produces repr-
identical ``CampaignResult`` values — and therefore byte-identical CSV
exports — and concurrent writers (threads sharing one store, plus a spool
worker delivering into it) never corrupt or drop entries.
"""

from __future__ import annotations

import threading

import pytest

from repro.exec.runner import ParallelRunner
from repro.scenarios.campaign import Axis, Campaign
from repro.scenarios.report import campaign_to_csv
from repro.scenarios.runner import CampaignRunner
from repro.scenarios.spec import Scenario
from repro.store import open_store


@pytest.fixture
def matrix(tiny_platform, tiny_classes) -> Campaign:
    """A 2x2 (bandwidth x MTBF) matrix on the toy platform; 16 tiny sims."""
    base = Scenario(
        name="toy",
        platform=tiny_platform,
        workload=tiny_classes,
        strategies=("ordered-daly", "least-waste"),
        num_runs=2,
        horizon_days=0.5,
        warmup_days=0.05,
        cooldown_days=0.05,
    )
    return Campaign(
        name="toy-matrix",
        base=base,
        axes=(
            Axis.from_values("io", "bandwidth_gbs", [0.5, 2.0]),
            Axis.from_values("mtbf", "node_mtbf_years", [0.05, 0.5]),
        ),
    )


def _run_through(kind: str, path, campaign: Campaign):
    store = open_store(kind, path)
    runner = ParallelRunner(cache=store)
    try:
        result = CampaignRunner(runner=runner).run(campaign)
    finally:
        runner.close()
    return store, result, runner.stats


# --------------------------------------------------------------- bit-identity
def test_campaign_repr_identical_through_both_stores(tmp_path, matrix):
    fs, fs_result, fs_stats = _run_through("filesystem", tmp_path / "fs", matrix)
    sq, sq_result, sq_stats = _run_through("sqlite", tmp_path / "db.sqlite", matrix)
    assert fs_stats.tasks_run == sq_stats.tasks_run == 16

    # repr-exact floats: every summary statistic matches to the last bit.
    for fs_outcome, sq_outcome in zip(fs_result.outcomes, sq_result.outcomes):
        assert fs_outcome.scenario.name == sq_outcome.scenario.name
        assert set(fs_outcome.summaries) == set(sq_outcome.summaries)
        for strategy, fs_summary in fs_outcome.summaries.items():
            assert repr(fs_summary) == repr(sq_outcome.summaries[strategy])
    assert campaign_to_csv(fs_result) == campaign_to_csv(sq_result)

    # Both stores now hold the same (digest, strategy, seed) -> value map.
    fs_records = {(r.digest, r.strategy, r.seed): r.body for r in fs.iter_raw_entries()}
    sq_records = {(r.digest, r.strategy, r.seed): r.body for r in sq.iter_raw_entries()}
    assert fs_records == sq_records and len(fs_records) == 16
    fs.close()
    sq.close()


def test_rerun_through_sqlite_is_all_cache_hits(tmp_path, matrix):
    store = open_store("sqlite", tmp_path / "db.sqlite")
    first = ParallelRunner(cache=store)
    result_one = CampaignRunner(runner=first).run(matrix)
    assert first.stats.tasks_run == 16
    second = ParallelRunner(cache=store)
    result_two = CampaignRunner(runner=second).run(matrix)
    assert second.stats.tasks_run == 0  # fully warm: zero new simulations
    assert second.stats.cache_hits == 16
    for one, two in zip(result_one.outcomes, result_two.outcomes):
        for strategy, summary in one.summaries.items():
            assert repr(summary) == repr(two.summaries[strategy])
    first.close()
    second.close()
    store.close()


# ---------------------------------------------------------- concurrent writers
def test_threaded_writers_never_drop_or_corrupt_entries(tmp_path):
    store = open_store("sqlite", tmp_path / "db.sqlite")
    digests = [c * 64 for c in "abcd"]
    errors: list[Exception] = []

    def hammer(digest: str) -> None:
        try:
            for seed in range(50):
                store.put(digest, "least-waste", seed, seed / 7.0)
            for seed in range(50):
                assert store.probe(digest, "least-waste", seed) == seed / 7.0
        except Exception as exc:  # pragma: no cover - only on failure
            errors.append(exc)

    threads = [threading.Thread(target=hammer, args=(d,)) for d in digests]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert errors == []
    assert len(store) == 200
    stats = store.stats()
    assert stats.entries == 200 and "corrupt" not in stats.versions
    store.close()


def test_spool_worker_delivers_into_a_sqlite_store(tmp_path, tiny_config):
    from repro.distributed import SpoolWorker, WorkSpool, make_task_specs
    from repro.exec import WasteRatioTask, config_digest
    from repro.stats.montecarlo import derive_seeds

    store = open_store("sqlite", tmp_path / "db.sqlite")
    spool = WorkSpool(tmp_path / "spool")
    config = tiny_config(horizon_s=0.25 * 86400.0)
    digest = config_digest(config)
    seeds = derive_seeds(0, 4)
    for spec in make_task_specs(WasteRatioTask(config), digest, config.strategy, seeds):
        spool.enqueue(spec)

    # The worker drains while submitter-side threads are writing other
    # digests into the same store — the WAL keeps both safe.
    writer_digest = "f" * 64
    writer = threading.Thread(
        target=lambda: [
            store.put(writer_digest, "s", seed, float(seed)) for seed in range(40)
        ]
    )
    writer.start()
    stats = SpoolWorker(spool, store, worker_id="w1", poll_interval_s=0.01).run(
        drain=True
    )
    writer.join()

    assert stats.tasks_done == 4 and stats.seeds_simulated == 4
    assert spool.status().drained
    for seed in seeds:
        assert store.probe(digest, config.strategy, seed) is not None
    assert len(store) == 44  # 4 delivered + 40 threaded, none lost

    # And the delivered values are bit-identical to a serial, storeless run.
    for seed in seeds:
        expected = WasteRatioTask(config)(seed)
        assert repr(store.probe(digest, config.strategy, seed)) == repr(expected)
    store.close()

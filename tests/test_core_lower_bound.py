"""Constrained lower bound, Theorem 1 (repro.core.lower_bound)."""

from __future__ import annotations

import pytest

from repro.core.daly import young_period
from repro.core.lower_bound import (
    SteadyStateClass,
    constrained_periods,
    io_pressure,
    optimal_periods,
    platform_lower_bound,
)
from repro.errors import AnalysisError


def make_classes(checkpoint_time: float = 200.0) -> list[SteadyStateClass]:
    return [
        SteadyStateClass("big", count=4.0, nodes=1000.0, checkpoint_time=checkpoint_time),
        SteadyStateClass("small", count=10.0, nodes=100.0, checkpoint_time=checkpoint_time / 4),
    ]


def test_steady_state_class_validation():
    with pytest.raises(AnalysisError):
        SteadyStateClass("x", count=0.0, nodes=10.0, checkpoint_time=1.0)
    with pytest.raises(AnalysisError):
        SteadyStateClass("x", count=1.0, nodes=0.0, checkpoint_time=1.0)
    with pytest.raises(AnalysisError):
        SteadyStateClass("x", count=1.0, nodes=10.0, checkpoint_time=0.0)
    with pytest.raises(AnalysisError):
        SteadyStateClass("x", count=1.0, nodes=10.0, checkpoint_time=1.0, recovery_time=-1.0)


def test_recovery_time_defaults_to_checkpoint_time():
    cls = SteadyStateClass("x", count=1.0, nodes=10.0, checkpoint_time=123.0)
    assert cls.effective_recovery_time == 123.0
    cls2 = SteadyStateClass("x", count=1.0, nodes=10.0, checkpoint_time=123.0, recovery_time=50.0)
    assert cls2.effective_recovery_time == 50.0


def test_constrained_periods_reduce_to_daly_at_lambda_zero():
    classes = make_classes()
    total_nodes, mu_ind = 5000.0, 1e8
    periods = constrained_periods(0.0, classes, total_nodes, mu_ind)
    for period, cls in zip(periods, classes):
        expected = young_period(cls.checkpoint_time, mu_ind / cls.nodes)
        assert period == pytest.approx(expected)


def test_periods_increase_with_lambda():
    classes = make_classes()
    p0 = constrained_periods(0.0, classes, 5000.0, 1e8)
    p1 = constrained_periods(1e-3, classes, 5000.0, 1e8)
    p2 = constrained_periods(1e-2, classes, 5000.0, 1e8)
    assert all(p1 > p0)
    assert all(p2 > p1)


def test_io_pressure_definition():
    classes = make_classes()
    periods = [1000.0, 500.0]
    expected = 4.0 * 200.0 / 1000.0 + 10.0 * 50.0 / 500.0
    assert io_pressure(periods, classes) == pytest.approx(expected)


def test_io_pressure_validation():
    classes = make_classes()
    with pytest.raises(AnalysisError):
        io_pressure([1000.0], classes)
    with pytest.raises(AnalysisError):
        io_pressure([1000.0, 0.0], classes)


def test_unconstrained_case_when_bandwidth_ample():
    # Large MTBF and small checkpoints: Daly periods easily satisfy F <= 1.
    classes = make_classes(checkpoint_time=10.0)
    periods, lam = optimal_periods(classes, 5000.0, 1e9)
    assert lam == 0.0
    assert io_pressure(periods, classes) <= 1.0


def test_constrained_case_activates_lambda_and_saturates_constraint():
    # Short MTBF and long commit times: Daly periods violate F <= 1.
    classes = make_classes(checkpoint_time=5000.0)
    mu_ind = 1e6
    daly = constrained_periods(0.0, classes, 5000.0, mu_ind)
    assert io_pressure(daly, classes) > 1.0
    periods, lam = optimal_periods(classes, 5000.0, mu_ind)
    assert lam > 0.0
    assert io_pressure(periods, classes) == pytest.approx(1.0, rel=1e-6)
    # Constrained periods stretch beyond Daly.
    assert all(periods >= daly)


def test_platform_lower_bound_constrained_never_below_unconstrained():
    classes = make_classes(checkpoint_time=5000.0)
    result = platform_lower_bound(classes, 5000.0, 1e6)
    assert result.waste >= result.unconstrained_waste - 1e-12
    assert result.constrained
    assert 0.0 < result.efficiency < 1.0
    assert result.waste_fraction == pytest.approx(result.waste / (1.0 + result.waste))


def test_platform_lower_bound_reports_daly_periods_and_names():
    classes = make_classes(checkpoint_time=10.0)
    result = platform_lower_bound(classes, 5000.0, 1e9)
    assert result.class_names == ("big", "small")
    assert not result.constrained
    assert result.periods == result.daly_periods
    assert result.period_for("big") == result.periods[0]
    with pytest.raises(AnalysisError):
        result.period_for("unknown")


def test_lower_bound_decreases_with_bandwidth():
    # Halving the checkpoint time (doubling bandwidth) can only reduce waste.
    slow = platform_lower_bound(make_classes(4000.0), 5000.0, 1e6)
    fast = platform_lower_bound(make_classes(2000.0), 5000.0, 1e6)
    assert fast.waste <= slow.waste + 1e-12


def test_lower_bound_decreases_with_reliability():
    classes = make_classes(2000.0)
    fragile = platform_lower_bound(classes, 5000.0, 1e6)
    reliable = platform_lower_bound(classes, 5000.0, 1e7)
    assert reliable.waste <= fragile.waste + 1e-12


def test_infeasible_configuration_raises():
    # Even arbitrarily long periods cannot satisfy the constraint when each
    # class alone needs more than the full I/O capacity per unit time...
    # that situation requires absurd parameters; instead check the bracket
    # guard by demanding an impossible lambda ceiling.
    classes = make_classes(checkpoint_time=5000.0)
    with pytest.raises(AnalysisError):
        optimal_periods(classes, 5000.0, 1e6, max_lambda=1e-12)


def test_empty_class_list_rejected():
    with pytest.raises(AnalysisError):
        platform_lower_bound([], 100.0, 1e6)

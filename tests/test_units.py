"""Unit-conversion helpers."""

from __future__ import annotations

import pytest

from repro import units


def test_time_constants_are_consistent():
    assert units.MINUTE == 60.0
    assert units.HOUR == 60.0 * units.MINUTE
    assert units.DAY == 24.0 * units.HOUR
    assert units.YEAR == 365.0 * units.DAY


def test_data_constants_are_decimal():
    assert units.KB == 1e3
    assert units.MB == 1e6
    assert units.GB == 1e9
    assert units.TB == 1e12
    assert units.PB == 1e15


@pytest.mark.parametrize(
    ("forward", "backward", "value"),
    [
        (units.hours, units.to_hours, 3.5),
        (units.days, units.to_days, 12.25),
        (units.years, units.to_years, 0.75),
        (units.gigabytes, units.to_gb, 42.0),
        (units.terabytes, units.to_tb, 1.5),
    ],
)
def test_conversions_round_trip(forward, backward, value):
    assert backward(forward(value)) == pytest.approx(value)


def test_bandwidth_conversion():
    assert units.gb_per_s(2.5) == pytest.approx(2.5e9)


def test_petabytes():
    assert units.petabytes(7.0) == pytest.approx(7e15)


def test_hours_and_days_compose():
    assert units.days(1.0) == pytest.approx(units.hours(24.0))

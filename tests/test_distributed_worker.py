"""Worker-loop and crash-recovery tests of the distributed subsystem.

The headline guarantee: a campaign executed through the spool backend is
bit-identical to the serial backend *even when a worker dies mid-task* —
the lease expires, a surviving worker reclaims the task, already-delivered
seeds are skipped (cache probes), and the submitter never notices.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.distributed import SpoolWorker, WorkSpool, make_task_specs
from repro.exec import ParallelRunner, ResultCache, WasteRatioTask, config_digest
from repro.scenarios.campaign import Campaign
from repro.scenarios.runner import CampaignRunner
from repro.scenarios.spec import Scenario
from repro.stats.montecarlo import derive_seeds


def _lease_of(spool_root, task_id: str):
    """The lease file of the claim batch currently holding one task."""
    for batch_dir in (spool_root / "claims").iterdir():
        if batch_dir.is_dir() and (batch_dir / f"{task_id}.json").exists():
            return batch_dir / ".lease.json"
    raise AssertionError(f"no claim batch holds {task_id!r}")


def _crash_scenario(tiny_platform, tiny_classes) -> Scenario:
    return Scenario(
        name="crashy",
        platform=tiny_platform,
        workload=tiny_classes,
        strategies=("ordered-daly", "least-waste"),
        num_runs=4,
        horizon_days=0.25,
        warmup_days=0.02,
        cooldown_days=0.02,
    )


# ------------------------------------------------------------ worker loop
def test_worker_drain_mode_processes_everything_and_exits(tmp_path, tiny_config):
    spool = WorkSpool(tmp_path / "spool")
    cache = ResultCache(tmp_path / "cache")
    config = tiny_config(horizon_s=0.25 * 86400.0)
    digest = config_digest(config)
    seeds = derive_seeds(0, 3)
    for spec in make_task_specs(WasteRatioTask(config), digest, config.strategy, seeds):
        spool.enqueue(spec)

    worker = SpoolWorker(spool, cache, worker_id="w1", poll_interval_s=0.01)
    stats = worker.run(drain=True)
    assert stats.tasks_done == 3  # default chunking: 3 seeds -> 3 specs
    assert stats.seeds_simulated == 3
    assert spool.status().drained and spool.status().done == 3
    for seed in seeds:
        assert cache.probe(digest, config.strategy, seed) is not None

    # Drained spool: a second drain-mode worker exits without claiming.
    assert SpoolWorker(spool, cache, poll_interval_s=0.01).run(drain=True).tasks_done == 0


def test_worker_idle_timeout_and_max_tasks(tmp_path, tiny_config):
    spool = WorkSpool(tmp_path / "spool")
    cache = ResultCache(tmp_path / "cache")
    start = time.time()
    stats = SpoolWorker(spool, cache, poll_interval_s=0.01).run(idle_timeout_s=0.05)
    assert stats.tasks_done == 0
    assert time.time() - start < 10.0

    config = tiny_config(horizon_s=0.25 * 86400.0)
    for spec in make_task_specs(
        WasteRatioTask(config), config_digest(config), config.strategy, derive_seeds(0, 3)
    ):
        spool.enqueue(spec)
    capped = SpoolWorker(spool, cache, poll_interval_s=0.01, max_tasks=2)
    assert capped.run(drain=True).tasks_done == 2
    assert spool.status().pending == 1  # one task intentionally left


def test_worker_records_failure_and_keeps_going(tmp_path, tiny_config):
    spool = WorkSpool(tmp_path / "spool")
    cache = ResultCache(tmp_path / "cache")
    bad = make_task_specs(_always_raises, "b" * 64, "least-waste", [1], chunk_size=1)[0]
    config = tiny_config(horizon_s=0.25 * 86400.0)
    good = make_task_specs(
        WasteRatioTask(config), config_digest(config), config.strategy, [7], chunk_size=1
    )[0]
    spool.enqueue(bad)
    spool.enqueue(good)
    stats = SpoolWorker(spool, cache, poll_interval_s=0.01).run(drain=True)
    assert stats.tasks_failed == 1 and stats.tasks_done == 1
    assert spool.failed_ids() == [bad.task_id]
    assert "ValueError" in spool.failure(bad.task_id)  # full remote traceback


def _always_raises(seed: int) -> float:
    raise ValueError(f"no value for seed {seed}")


def test_worker_death_is_not_recorded_as_a_task_failure(tmp_path):
    """SystemExit (a supervisor stopping the worker) must propagate and leave
    the claim to lease expiry — a failure record would abort the submitter's
    whole batch instead of letting a peer retry."""
    spool = WorkSpool(tmp_path / "spool", lease_ttl_s=0.05)
    cache = ResultCache(tmp_path / "cache")
    spec = make_task_specs(_exits_hard, "c" * 64, "least-waste", [1], chunk_size=1)[0]
    spool.enqueue(spec)
    worker = SpoolWorker(spool, cache, poll_interval_s=0.01)
    with pytest.raises(SystemExit):
        worker.run(drain=True)
    status = spool.status()
    assert status.failed == 0  # no failure record...
    assert status.claimed == 1  # ...the claim is simply orphaned
    time.sleep(0.06)
    assert spool.reclaim_expired() == [spec.task_id]  # and peers reclaim it


def _exits_hard(seed: int) -> float:
    raise SystemExit(1)


def test_worker_skips_seeds_a_previous_attempt_already_delivered(tmp_path, tiny_config):
    """Reclaimed tasks re-simulate only the seeds the crashed worker lost."""
    spool = WorkSpool(tmp_path / "spool")
    cache = ResultCache(tmp_path / "cache")
    config = tiny_config(horizon_s=0.25 * 86400.0)
    digest = config_digest(config)
    seeds = derive_seeds(0, 3)
    spec = make_task_specs(
        WasteRatioTask(config), digest, config.strategy, seeds, chunk_size=3
    )[0]
    # A previous attempt delivered the first two seeds before dying.
    for seed in seeds[:2]:
        cache.put(digest, config.strategy, seed, WasteRatioTask(config)(seed))
    spool.enqueue(spec)
    stats = SpoolWorker(spool, cache, poll_interval_s=0.01).run(drain=True)
    assert stats.tasks_done == 1
    assert stats.seeds_simulated == 1  # only the missing third seed


# ------------------------------------------------------- crash recovery
def test_crashed_worker_lease_expires_and_campaign_is_bit_identical(
    tiny_platform, tiny_classes, tmp_path, spool_workers
):
    """The ISSUE acceptance scenario: kill a worker mid-task; a peer reclaims
    after lease expiry and the final CampaignResult is bit-identical to the
    serial backend."""
    scenario = _crash_scenario(tiny_platform, tiny_classes)
    campaign = Campaign(name="crash-campaign", base=scenario)
    serial = CampaignRunner(runner=ParallelRunner()).run(campaign)

    spool_dir, cache_dir = tmp_path / "spool", tmp_path / "cache"
    spool = WorkSpool(spool_dir, lease_ttl_s=0.2)
    cache = ResultCache(cache_dir)

    # A doomed worker claims one task (the same content-addressed specs the
    # submitter will enqueue), delivers a single seed, then "crashes": no
    # ack, no further heartbeats.  Backdating the claim mtime stands in for
    # waiting out the lease.
    config = scenario.config(scenario.strategies[0])
    digest = config_digest(config)
    seeds = derive_seeds(scenario.base_seed, scenario.num_runs)
    for spec in make_task_specs(WasteRatioTask(config), digest, config.strategy, seeds):
        assert spool.enqueue(spec)
    doomed = spool.claim("doomed-worker")
    assert doomed is not None
    cache.put(
        doomed.digest,
        doomed.strategy,
        doomed.seeds[0],
        WasteRatioTask(config)(doomed.seeds[0]),
    )
    past = time.time() - 60.0
    os.utime(_lease_of(spool_dir, doomed.task_id), (past, past))

    runner = ParallelRunner(
        backend="spool",
        spool_dir=spool_dir,
        cache_dir=cache_dir,
        spool_poll_s=0.01,
        spool_lease_ttl_s=0.2,
        spool_timeout_s=300.0,
    )
    with spool_workers(spool_dir, cache_dir, count=2, lease_ttl_s=0.2) as workers:
        spooled = CampaignRunner(runner=runner).run(campaign)

    assert spooled == serial  # exact dataclass equality, every summary field
    status = WorkSpool(spool_dir).status()
    assert status.drained and status.failed == 0
    # The doomed task really was re-claimed by a surviving worker.
    assert sum(worker.stats.tasks_done for worker in workers) >= len(seeds)
    # The submitter enqueued only cache misses: the one pre-delivered seed
    # was served from the cache, not re-spooled.
    assert runner.stats.cache_hits == 1
    assert runner.stats.remote_seeds == len(seeds) * len(scenario.strategies) - 1


def test_interrupted_campaign_resumes_where_it_left_off(
    tiny_platform, tiny_classes, tmp_path, spool_workers
):
    """Re-running a partially completed campaign only pays for missing seeds."""
    scenario = _crash_scenario(tiny_platform, tiny_classes)
    campaign = Campaign(name="resume-campaign", base=scenario)
    serial = CampaignRunner(runner=ParallelRunner()).run(campaign)

    spool_dir, cache_dir = tmp_path / "spool", tmp_path / "cache"
    # "Interrupted first run": one full strategy cell already in the cache.
    warm = ParallelRunner(cache_dir=cache_dir)
    warm.run_config(
        scenario.config(scenario.strategies[0]),
        derive_seeds(scenario.base_seed, scenario.num_runs),
    )

    runner = ParallelRunner(
        backend="spool",
        spool_dir=spool_dir,
        cache_dir=cache_dir,
        spool_poll_s=0.01,
        spool_timeout_s=300.0,
    )
    with spool_workers(spool_dir, cache_dir, count=2):
        resumed = CampaignRunner(runner=runner).run(campaign)
    assert resumed == serial
    assert runner.stats.cache_hits == scenario.num_runs  # first cell replayed
    assert runner.stats.remote_seeds == scenario.num_runs  # second cell spooled

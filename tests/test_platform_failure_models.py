"""Pluggable failure-time distributions (repro.platform.failures.FailureModel)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.exec.digest import config_digest
from repro.platform.failures import (
    FAILURE_MODEL_KINDS,
    FailureModel,
    generate_failure_trace,
)
from repro.units import DAY


# ------------------------------------------------------------- validation
def test_failure_model_defaults_to_exponential():
    model = FailureModel()
    assert model.kind == "exponential"
    assert model.shape == 1.0
    assert model.describe() == "exponential"


def test_failure_model_kinds_registered():
    assert set(FAILURE_MODEL_KINDS) == {"exponential", "weibull"}


def test_failure_model_rejects_unknown_kind_and_bad_shape():
    with pytest.raises(ConfigurationError):
        FailureModel(kind="lognormal")
    with pytest.raises(ConfigurationError):
        FailureModel(kind="weibull", shape=0.0)
    with pytest.raises(ConfigurationError):
        FailureModel(kind="weibull", shape=float("inf"))
    # Exponential has no shape knob; forcing shape==1 keeps equal models equal.
    with pytest.raises(ConfigurationError):
        FailureModel(kind="exponential", shape=2.0)


def test_weibull_describe_includes_shape():
    assert FailureModel(kind="weibull", shape=0.7).describe() == "weibull(k=0.7)"


# ------------------------------------------------------------- generation
def test_default_model_is_bit_identical_to_legacy_exponential(tiny_platform):
    legacy = generate_failure_trace(tiny_platform, 30 * DAY, np.random.default_rng(5))
    explicit = generate_failure_trace(
        tiny_platform, 30 * DAY, np.random.default_rng(5), model=FailureModel()
    )
    assert list(legacy.times) == list(explicit.times)
    assert list(legacy.node_ids) == list(explicit.node_ids)


def test_weibull_trace_is_reproducible_and_distinct(tiny_platform):
    model = FailureModel(kind="weibull", shape=0.7)
    a = generate_failure_trace(tiny_platform, 30 * DAY, np.random.default_rng(5), model=model)
    b = generate_failure_trace(tiny_platform, 30 * DAY, np.random.default_rng(5), model=model)
    exp = generate_failure_trace(tiny_platform, 30 * DAY, np.random.default_rng(5))
    assert list(a.times) == list(b.times)
    assert list(a.node_ids) == list(b.node_ids)
    assert list(a.times) != list(exp.times)


@pytest.mark.parametrize("shape", [0.5, 0.7, 1.5, 3.0])
def test_weibull_gaps_preserve_the_platform_mtbf(tiny_platform, shape):
    """Whatever the shape, the mean inter-arrival equals the system MTBF."""
    model = FailureModel(kind="weibull", shape=shape)
    horizon = 3000.0 * tiny_platform.system_mtbf_s
    trace = generate_failure_trace(
        tiny_platform, horizon, np.random.default_rng(11), model=model
    )
    assert trace.empirical_mtbf() == pytest.approx(tiny_platform.system_mtbf_s, rel=0.1)


def test_weibull_small_shape_is_burstier(tiny_platform):
    """k < 1 produces more dispersed gaps (higher coefficient of variation)."""
    horizon = 2000.0 * tiny_platform.system_mtbf_s
    bursty = generate_failure_trace(
        tiny_platform,
        horizon,
        np.random.default_rng(3),
        model=FailureModel(kind="weibull", shape=0.5),
    )
    regular = generate_failure_trace(
        tiny_platform,
        horizon,
        np.random.default_rng(3),
        model=FailureModel(kind="weibull", shape=3.0),
    )

    def gap_cv(trace):
        gaps = np.diff(np.concatenate(([0.0], trace.times)))
        return gaps.std() / gaps.mean()

    assert gap_cv(bursty) > gap_cv(regular)


# ------------------------------------------------------------- config threading
def test_config_normalises_default_model_to_none(tiny_config):
    assert tiny_config(failure_model=FailureModel()).failure_model is None
    weibull = FailureModel(kind="weibull", shape=0.7)
    assert tiny_config(failure_model=weibull).failure_model == weibull


def test_config_rejects_non_failure_model(tiny_config):
    with pytest.raises(ConfigurationError):
        tiny_config(failure_model="weibull")


def test_failure_model_changes_the_config_digest(tiny_config):
    base = tiny_config()
    explicit_default = tiny_config(failure_model=FailureModel())
    weibull = tiny_config(failure_model=FailureModel(kind="weibull", shape=0.7))
    other_shape = tiny_config(failure_model=FailureModel(kind="weibull", shape=1.5))
    # Default exponential (None or explicit) shares one digest; shaped
    # models each get their own.
    assert config_digest(base) == config_digest(explicit_default)
    assert config_digest(base) != config_digest(weibull)
    assert config_digest(weibull) != config_digest(other_shape)


def test_simulation_uses_the_configured_failure_model(tiny_config):
    from repro.simulation.simulator import Simulation

    base = tiny_config(horizon_s=10 * DAY, seed=7)
    shaped = tiny_config(
        horizon_s=10 * DAY,
        seed=7,
        failure_model=FailureModel(kind="weibull", shape=0.5),
    )
    exp_trace = Simulation(base).failure_trace
    weibull_trace = Simulation(shaped).failure_trace
    assert list(exp_trace.times) != list(weibull_trace.times)
    # Same seed and model: identical initial conditions.
    again = Simulation(shaped).failure_trace
    assert list(weibull_trace.times) == list(again.times)

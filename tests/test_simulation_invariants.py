"""Conservation and edge-case invariants of the full simulator.

These complement the scenario tests in ``test_simulation_simulator.py`` with
randomized-but-bounded checks (hypothesis) and corner-case workloads (jobs
without input or output, jobs smaller than one checkpoint period, horizons
that cut jobs mid-flight).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.app_class import ApplicationClass
from repro.apps.job import Job
from repro.platform.failures import FailureEvent, FailureTrace
from repro.platform.spec import PlatformSpec
from repro.simulation.baseline import baseline_node_seconds
from repro.simulation.config import SimulationConfig
from repro.simulation.simulator import Simulation
from repro.units import DAY, GB, HOUR, YEAR


def small_platform(bandwidth_gb: float = 1.0) -> PlatformSpec:
    return PlatformSpec(
        name="inv",
        num_nodes=32,
        cores_per_node=1,
        memory_per_node_bytes=8.0 * GB,
        io_bandwidth_bytes_per_s=bandwidth_gb * GB,
        node_mtbf_s=2.0 * YEAR,
    )


def make_class(nodes: int, work_hours: float, ckpt_gb: float, share: float) -> ApplicationClass:
    return ApplicationClass(
        name=f"c{nodes}",
        nodes=nodes,
        work_s=work_hours * HOUR,
        input_bytes=1.0 * GB,
        output_bytes=2.0 * GB,
        checkpoint_bytes=ckpt_gb * GB,
        workload_share=share,
    )


@settings(max_examples=12, deadline=None)
@given(
    strategy=st.sampled_from(["oblivious-fixed", "ordered-daly", "orderednb-fixed", "least-waste"]),
    nodes_a=st.integers(min_value=2, max_value=12),
    nodes_b=st.integers(min_value=2, max_value=12),
    work_a=st.floats(min_value=1.0, max_value=6.0),
    work_b=st.floats(min_value=1.0, max_value=6.0),
    failure_hour=st.floats(min_value=0.2, max_value=20.0),
    failure_node=st.integers(min_value=0, max_value=31),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_randomized_small_scenarios_respect_invariants(
    strategy, nodes_a, nodes_b, work_a, work_b, failure_hour, failure_node, seed
):
    platform = small_platform()
    classes = (
        make_class(nodes_a, work_a, ckpt_gb=4.0, share=0.5),
        make_class(nodes_b, work_b, ckpt_gb=2.0, share=0.5),
    )
    config = SimulationConfig(
        platform=platform,
        classes=classes,
        strategy=strategy,
        horizon_s=1.0 * DAY,
        warmup_s=1.0 * HOUR,
        cooldown_s=1.0 * HOUR,
        seed=seed,
    )
    trace = FailureTrace([FailureEvent(failure_hour * HOUR, failure_node)], config.horizon_s)
    jobs = [
        Job(app_class=classes[0], total_work_s=work_a * HOUR, priority=0.0),
        Job(app_class=classes[1], total_work_s=work_b * HOUR, priority=1.0),
    ]
    sim = Simulation(config, jobs=jobs, failure_trace=trace)
    result = sim.run()

    breakdown = result.breakdown
    # Ratios are well-formed.
    assert 0.0 <= result.waste_ratio <= 1.0
    assert 0.0 <= result.efficiency <= 1.0
    assert result.waste_ratio == pytest.approx(1.0 - result.efficiency)
    # No category other than compute may be negative (compute can dip only
    # through the lost-work move, which these single-failure scenarios keep
    # far from negative territory).
    assert breakdown.compute >= -1e-6
    for value in (
        breakdown.base_io,
        breakdown.io_delay,
        breakdown.checkpoint,
        breakdown.checkpoint_wait,
        breakdown.recovery,
        breakdown.lost_work,
    ):
        assert value >= 0.0
    # Accounted node-seconds never exceed the allocated node-seconds.
    assert breakdown.useful + breakdown.waste <= breakdown.allocated + 1e-6
    # Job conservation: submitted jobs either finished, failed, or are still
    # running/pending at the horizon; restarts mirror failures.
    assert result.jobs_completed + result.jobs_failed <= result.jobs_submitted + result.restarts_submitted
    assert result.restarts_submitted == result.jobs_failed
    assert result.failures_effective <= result.failures_total == 1
    # Checkpoints: completions never exceed requests.
    assert result.checkpoints_completed <= result.checkpoints_requested


@pytest.mark.parametrize("strategy", ["ordered-fixed", "least-waste"])
def test_job_without_input_or_output(strategy):
    platform = small_platform()
    app = ApplicationClass(
        name="no-io",
        nodes=4,
        work_s=2 * HOUR,
        input_bytes=0.0,
        output_bytes=0.0,
        checkpoint_bytes=4.0 * GB,
        workload_share=1.0,
    )
    config = SimulationConfig(
        platform=platform,
        classes=(app,),
        strategy=strategy,
        horizon_s=1.0 * DAY,
        warmup_s=0.0,
        cooldown_s=0.0,
        seed=0,
    )
    sim = Simulation(
        config,
        jobs=[Job(app_class=app, total_work_s=2 * HOUR)],
        failure_trace=FailureTrace([], config.horizon_s),
    )
    result = sim.run()
    assert result.jobs_completed == 1
    assert result.breakdown.base_io == 0.0
    # With no input/output, useful work is exactly the compute time.
    assert result.breakdown.compute == pytest.approx(4 * 2 * HOUR, rel=1e-9)


def test_job_shorter_than_checkpoint_period_never_checkpoints():
    platform = small_platform()
    app = make_class(4, work_hours=0.5, ckpt_gb=4.0, share=1.0)
    config = SimulationConfig(
        platform=platform,
        classes=(app,),
        strategy="ordered-fixed",  # 1-hour period > 0.5 hour of work
        horizon_s=0.5 * DAY,
        warmup_s=0.0,
        cooldown_s=0.0,
        seed=0,
    )
    sim = Simulation(
        config,
        jobs=[Job(app_class=app, total_work_s=0.5 * HOUR)],
        failure_trace=FailureTrace([], config.horizon_s),
    )
    result = sim.run()
    assert result.jobs_completed == 1
    assert result.checkpoints_completed == 0
    assert result.breakdown.checkpoint == 0.0


def test_horizon_cuts_job_mid_flight_without_errors():
    platform = small_platform(bandwidth_gb=0.05)  # slow file system
    app = make_class(4, work_hours=30.0, ckpt_gb=16.0, share=1.0)
    config = SimulationConfig(
        platform=platform,
        classes=(app,),
        strategy="orderednb-daly",
        horizon_s=0.25 * DAY,
        warmup_s=0.0,
        cooldown_s=0.0,
        seed=0,
    )
    sim = Simulation(
        config,
        jobs=[Job(app_class=app, total_work_s=30 * HOUR)],
        failure_trace=FailureTrace([], config.horizon_s),
    )
    result = sim.run()
    # Nothing completed, but the accounting still closed cleanly at the horizon.
    assert result.jobs_completed == 0
    assert result.breakdown.compute > 0.0
    assert result.breakdown.useful + result.breakdown.waste <= result.breakdown.allocated + 1e-6


def test_useful_work_bounded_by_baseline_of_submitted_jobs():
    """Even with failures, the useful node-seconds recorded in the window can
    never exceed the failure-free baseline of everything submitted (original
    jobs; restarts only redo work already paid for)."""
    platform = small_platform()
    classes = (make_class(8, 4.0, 8.0, 0.6), make_class(4, 2.0, 4.0, 0.4))
    config = SimulationConfig(
        platform=platform,
        classes=classes,
        strategy="least-waste",
        horizon_s=1.0 * DAY,
        warmup_s=0.0,
        cooldown_s=0.0,
        seed=3,
    )
    jobs = [
        Job(app_class=classes[0], total_work_s=4 * HOUR, priority=0.0),
        Job(app_class=classes[1], total_work_s=2 * HOUR, priority=1.0),
        Job(app_class=classes[1], total_work_s=2 * HOUR, priority=2.0),
    ]
    trace = FailureTrace([FailureEvent(2 * HOUR, 0), FailureEvent(5 * HOUR, 9)], config.horizon_s)
    sim = Simulation(config, jobs=jobs, failure_trace=trace)
    result = sim.run()
    baseline = baseline_node_seconds(jobs, platform)
    assert result.breakdown.useful <= baseline + 1e-6

"""Seed-derivation stability (repro.stats.montecarlo.derive_seeds).

The on-disk result cache keys entries by the *derived* per-run seeds, so
any change to the derivation silently invalidates every cached result and
breaks cross-version reproducibility.  These tests pin the exact derived
values for fixed base seeds; if a refactor ever changes them, it must also
bump ``repro.exec.digest.DIGEST_VERSION`` and update the pins deliberately.
"""

from __future__ import annotations

import pytest

from repro.errors import AnalysisError
from repro.stats.montecarlo import DerivedSeeds, derive_seeds, resolve_base_seed

#: Exact derivation outputs pinned against the current SeedSequence scheme.
PINNED_SEEDS = {
    0: [
        4334430513956379144,
        2440950710608614359,
        8226343694796210948,
        6619194650426729951,
        8366031049750315900,
    ],
    42: [
        8069173719269958482,
        67091864417934941,
        5800923004941853430,
        1873989265477067874,
        4950238818811482667,
    ],
    2018: [
        4635298058595303609,
        5909864665720692783,
        8800430983715898463,
        220802301681091403,
        1172329535173036626,
    ],
}


@pytest.mark.parametrize("base_seed", sorted(PINNED_SEEDS))
def test_derive_seeds_exact_values_are_pinned(base_seed):
    assert derive_seeds(base_seed, 5) == PINNED_SEEDS[base_seed]


@pytest.mark.parametrize("base_seed", [0, 42, 2018, 987654321])
@pytest.mark.parametrize("n,k", [(1, 1), (3, 4), (10, 15)])
def test_derive_seeds_prefix_stability(base_seed, n, k):
    """``derive_seeds(s, n)`` is a prefix of ``derive_seeds(s, n + k)``."""
    short = derive_seeds(base_seed, n)
    long = derive_seeds(base_seed, n + k)
    assert list(long)[:n] == list(short)
    assert len(set(long)) == n + k  # all distinct


def test_derive_seeds_are_63_bit_non_negative():
    for seed in derive_seeds(123, 64):
        assert 0 <= seed < 2**63


def test_derive_seeds_requires_positive_runs():
    with pytest.raises(AnalysisError):
        derive_seeds(0, 0)
    with pytest.raises(AnalysisError):
        derive_seeds(None, -1)


# ------------------------------------------------------------- None seeds
def test_derive_seeds_none_records_resolved_entropy():
    seeds = derive_seeds(None, 4)
    assert isinstance(seeds, DerivedSeeds)
    assert isinstance(seeds.base_entropy, int)
    # The recorded entropy regenerates the exact same seeds: "no seed" runs
    # stay reproducible and cacheable after the fact.
    assert derive_seeds(seeds.base_entropy, 4) == list(seeds)
    # And the replay records the same root, so it chains indefinitely.
    assert derive_seeds(seeds.base_entropy, 4).base_entropy == seeds.base_entropy


def test_derive_seeds_none_resolves_fresh_entropy_per_call():
    a = derive_seeds(None, 3)
    b = derive_seeds(None, 3)
    assert a.base_entropy != b.base_entropy  # 128-bit OS entropy
    assert list(a) != list(b)


def test_resolve_base_seed_passthrough_and_entropy():
    assert resolve_base_seed(7) == 7
    assert resolve_base_seed(0) == 0
    resolved = resolve_base_seed(None)
    assert isinstance(resolved, int) and resolved >= 0
    # Resolution is idempotent: a resolved seed resolves to itself.
    assert resolve_base_seed(resolved) == resolved


def test_explicit_base_seed_keeps_recorded_entropy():
    seeds = derive_seeds(42, 5)
    assert seeds.base_entropy == 42

#!/usr/bin/env python3
"""Run the reference (moderate-scale) experiments recorded in EXPERIMENTS.md.

This script regenerates every figure of the paper at the scale documented in
EXPERIMENTS.md (larger than the benchmark defaults, still far below the
paper's 60-day x 1000-run campaigns) and writes the rendered tables to
``results/`` so they can be pasted into EXPERIMENTS.md.
"""

from __future__ import annotations

import argparse
import pathlib
import time

from repro.experiments.figure1 import Figure1Config, render_figure1, run_figure1
from repro.experiments.figure2 import Figure2Config, render_figure2, run_figure2
from repro.experiments.figure3 import Figure3Config, render_figure3, run_figure3
from repro.experiments.report import render_sweep_detailed
from repro.experiments.table1 import render_table1


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output-dir", default="results")
    parser.add_argument("--horizon-days", type=float, default=8.0)
    parser.add_argument("--num-runs", type=int, default=5)
    parser.add_argument("--figure3-num-runs", type=int, default=2)
    parser.add_argument("--figure3-horizon-days", type=float, default=4.0)
    args = parser.parse_args()

    out = pathlib.Path(args.output_dir)
    out.mkdir(parents=True, exist_ok=True)

    def save(name: str, text: str) -> None:
        (out / name).write_text(text + "\n")
        print(f"[{time.strftime('%H:%M:%S')}] wrote {out / name}", flush=True)

    save("table1.txt", render_table1())

    t0 = time.time()
    fig1 = run_figure1(
        Figure1Config(
            bandwidths_gbs=(40.0, 60.0, 80.0, 100.0, 120.0, 140.0, 160.0),
            horizon_days=args.horizon_days,
            num_runs=args.num_runs,
            base_seed=2024,
        )
    )
    save(
        "figure1.txt",
        render_figure1(fig1)
        + f"\n\n(horizon {args.horizon_days} days, {args.num_runs} runs/point, "
        + f"{time.time() - t0:.0f}s)\n\n"
        + render_sweep_detailed(fig1, title="Figure 1 candlesticks"),
    )

    t0 = time.time()
    fig2 = run_figure2(
        Figure2Config(
            node_mtbf_years=(2.0, 5.0, 10.0, 20.0, 50.0),
            bandwidth_gbs=40.0,
            horizon_days=args.horizon_days,
            num_runs=args.num_runs,
            base_seed=2024,
        )
    )
    save(
        "figure2.txt",
        render_figure2(fig2)
        + f"\n\n(horizon {args.horizon_days} days, {args.num_runs} runs/point, "
        + f"{time.time() - t0:.0f}s)\n\n"
        + render_sweep_detailed(fig2, title="Figure 2 candlesticks"),
    )

    t0 = time.time()
    fig3 = run_figure3(
        Figure3Config(
            node_mtbf_years=(5.0, 15.0, 25.0),
            horizon_days=args.figure3_horizon_days,
            warmup_days=0.5,
            cooldown_days=0.5,
            num_runs=args.figure3_num_runs,
            base_seed=2024,
            search_iterations=6,
        )
    )
    save(
        "figure3.txt",
        render_figure3(fig3)
        + f"\n\n(horizon {args.figure3_horizon_days} days, {args.figure3_num_runs} runs/probe, "
        + f"{time.time() - t0:.0f}s)",
    )
    print("done", flush=True)


if __name__ == "__main__":
    main()
